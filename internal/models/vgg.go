package models

import (
	"fmt"
	"math/rand"

	"modelslicing/internal/nn"
)

// VGGConfig describes a VGG-style plain convolutional network.
type VGGConfig struct {
	Name        string
	InChannels  int
	StageWidths []int
	StageBlocks []int
	// PoolAfter marks stages followed by a 2×2 max-pool.
	PoolAfter []bool
	// FCDims are fully-connected hidden layers after flattening (ImageNet
	// VGG); empty means global-average-pool directly into the classifier
	// (CIFAR VGG, Table 3 left panel).
	FCDims  []int
	Classes int
	// Groups is the slice granularity G per layer.
	Groups int
	// Norm picks the normalization family; NumWidths sizes NormSwitchable.
	Norm      Norm
	NumWidths int
	// Dropout applies to FC hidden layers (ImageNet variant).
	Dropout float64
	// InputHW is the input spatial size (for documentation/cost queries).
	InputHW int
}

// VGG13Paper returns the exact CIFAR VGG-13 shape of Table 3 (9.42M params).
func VGG13Paper() VGGConfig {
	return VGGConfig{
		Name: "VGG-13", InChannels: 3, InputHW: 32,
		StageWidths: []int{64, 128, 256, 512},
		StageBlocks: []int{2, 2, 2, 4},
		PoolAfter:   []bool{false, true, true, false},
		Classes:     10, Groups: 8, Norm: NormGroup, NumWidths: 1,
	}
}

// VGG16Paper returns the ImageNet VGG-16 shape of Table 3 (138.36M params).
func VGG16Paper() VGGConfig {
	return VGGConfig{
		Name: "VGG-16", InChannels: 3, InputHW: 224,
		StageWidths: []int{64, 128, 256, 512, 512},
		StageBlocks: []int{2, 2, 3, 3, 3},
		PoolAfter:   []bool{true, true, true, true, true},
		FCDims:      []int{4096, 4096},
		Classes:     1000, Groups: 8, Norm: NormGroup, NumWidths: 1,
		Dropout: 0.5,
	}
}

// VGG13Mini returns the width-scaled VGG-13 analogue used for training on
// the synthetic CIFAR-like task (DESIGN.md §2): same stage structure, widths
// divided by 8, two blocks in the last stage, 16×16 inputs.
func VGG13Mini(groups int, norm Norm, numWidths int) VGGConfig {
	return VGGConfig{
		Name: "VGG-13-mini", InChannels: 3, InputHW: 16,
		StageWidths: []int{8, 16, 32, 64},
		StageBlocks: []int{2, 2, 2, 2},
		PoolAfter:   []bool{false, true, true, false},
		Classes:     10, Groups: groups, Norm: norm, NumWidths: numWidths,
	}
}

// ScaleWidths returns a copy of the config with all stage widths multiplied
// by num/den (used to build the fixed-width ensemble baselines).
func (c VGGConfig) ScaleWidths(num, den int) VGGConfig {
	out := c
	out.StageWidths = make([]int, len(c.StageWidths))
	for i, w := range c.StageWidths {
		sw := w * num / den
		if sw < 1 {
			sw = 1
		}
		out.StageWidths[i] = sw
	}
	out.Name = fmt.Sprintf("%s-w%d/%d", c.Name, num, den)
	return out
}

// NewVGG builds the network. The returned tap indices mark the layer count
// after each stage (before its pool), for multi-classifier baselines.
func NewVGG(cfg VGGConfig, rng *rand.Rand) (*nn.Sequential, []int) {
	if len(cfg.StageWidths) != len(cfg.StageBlocks) || len(cfg.StageWidths) != len(cfg.PoolAfter) {
		panic(fmt.Sprintf("models: inconsistent VGG config %+v", cfg))
	}
	seq := &nn.Sequential{}
	var taps []int
	in := cfg.InChannels
	inSpec := nn.Fixed() // network input is never sliced
	for s, width := range cfg.StageWidths {
		outSpec := nn.Sliced(cfg.Groups)
		for b := 0; b < cfg.StageBlocks[s]; b++ {
			seq.Layers = append(seq.Layers,
				nn.Conv3x3(in, width, inSpec, outSpec, rng),
				newNorm(cfg.Norm, width, outSpec, cfg.Groups, cfg.NumWidths),
				nn.NewReLU(),
			)
			in = width
			inSpec = outSpec
		}
		taps = append(taps, len(seq.Layers))
		if cfg.PoolAfter[s] {
			seq.Layers = append(seq.Layers, nn.NewMaxPool2D(2, 2))
		}
	}
	if len(cfg.FCDims) == 0 {
		head := nn.NewDense(in, cfg.Classes, nn.Sliced(cfg.Groups), nn.Fixed(), true, rng)
		// The classifier input is sliced and not followed by normalization,
		// so its pre-activation scale would shrink with the rate; rescaling
		// by full/active fan-in keeps the logit temperature stable across
		// subnets (the paper's output rescaling).
		head.Rescale = true
		seq.Layers = append(seq.Layers,
			nn.NewGlobalAvgPool(),
			head,
		)
		return seq, taps
	}
	// ImageNet-style head: flatten the final feature map into FC layers.
	hw := cfg.InputHW
	for _, pool := range cfg.PoolAfter {
		if pool {
			hw /= 2
		}
	}
	seq.Layers = append(seq.Layers, nn.NewFlatten())
	fcIn := in * hw * hw
	fcInSpec := nn.Sliced(cfg.Groups)
	for _, dim := range cfg.FCDims {
		seq.Layers = append(seq.Layers,
			nn.NewDense(fcIn, dim, fcInSpec, nn.Sliced(cfg.Groups), true, rng),
			nn.NewReLU(),
		)
		if cfg.Dropout > 0 {
			seq.Layers = append(seq.Layers, nn.NewDropout(cfg.Dropout))
		}
		fcIn = dim
		fcInSpec = nn.Sliced(cfg.Groups)
	}
	final := nn.NewDense(fcIn, cfg.Classes, fcInSpec, nn.Fixed(), true, rng)
	final.Rescale = true
	seq.Layers = append(seq.Layers, final)
	return seq, taps
}
