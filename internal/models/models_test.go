package models

import (
	"math"
	"math/rand"
	"testing"

	"modelslicing/internal/cost"
	"modelslicing/internal/nn"
	"modelslicing/internal/slicing"
	"modelslicing/internal/tensor"
)

// assertParamsNear checks a model's full-width parameter count against the
// value the paper reports in Table 3, within tol (relative).
func assertParamsNear(t *testing.T, name string, model nn.Layer, inShape []int, wantM float64, tol float64) {
	t.Helper()
	p, _ := cost.Measure(model, inShape, 1)
	gotM := float64(p.Params) / 1e6
	if math.Abs(gotM-wantM) > tol*wantM {
		t.Fatalf("%s params = %.3fM, paper reports %.2fM (tol %.0f%%)", name, gotM, wantM, tol*100)
	}
}

func TestTable3VGG13Params(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, _ := NewVGG(VGG13Paper(), rng)
	assertParamsNear(t, "VGG-13", m, []int{3, 32, 32}, 9.42, 0.01)
}

func TestTable3ResNet164Params(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, _ := NewResNet(ResNet164Paper(), rng)
	assertParamsNear(t, "ResNet-164", m, []int{3, 32, 32}, 1.72, 0.02)
}

func TestTable3ResNet56x2Params(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, _ := NewResNet(ResNet56x2Paper(), rng)
	assertParamsNear(t, "ResNet-56-2", m, []int{3, 32, 32}, 2.35, 0.02)
}

func TestTable3VGG16Params(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, _ := NewVGG(VGG16Paper(), rng)
	assertParamsNear(t, "VGG-16", m, []int{3, 224, 224}, 138.36, 0.01)
}

func TestTable3ResNet50Params(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, _ := NewResNet(ResNet50Paper(), rng)
	assertParamsNear(t, "ResNet-50", m, []int{3, 224, 224}, 25.56, 0.02)
}

func TestVGGMiniForwardShapesAllRates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, taps := NewVGG(VGG13Mini(8, NormGroup, 1), rng)
	if len(taps) != 4 {
		t.Fatalf("want 4 stage taps, got %d", len(taps))
	}
	x := tensor.New(2, 3, 16, 16)
	for _, r := range slicing.NewRateList(0.25, 8) {
		y := m.Forward(nn.Eval(r), x)
		if y.Dim(0) != 2 || y.Dim(1) != 10 {
			t.Fatalf("rate %v: output %v", r, y.Shape)
		}
		if !y.AllFinite() {
			t.Fatalf("rate %v: non-finite output", r)
		}
	}
}

func TestVGGMiniGradCheckSliced(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, _ := NewVGG(VGG13Mini(4, NormGroup, 1), rng)
	x := tensor.New(1, 3, 16, 16)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	if err := nn.CheckGradients(m, nn.Train(0.5, rng), x, nil, 8); err != nil {
		t.Fatal(err)
	}
}

func TestResNetMiniForwardAllRates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, taps := NewResNet(ResNetMini(8, NormGroup, 1), rng)
	if len(taps) != 3 {
		t.Fatalf("want 3 stage taps, got %d", len(taps))
	}
	x := tensor.New(2, 3, 16, 16)
	for _, r := range slicing.NewRateList(0.25, 8) {
		y := m.Forward(nn.Eval(r), x)
		if y.Dim(1) != 10 || !y.AllFinite() {
			t.Fatalf("rate %v: bad output %v", r, y.Shape)
		}
	}
}

func TestResNetMiniGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, _ := NewResNet(ResNetMini(4, NormGroup, 1), rng)
	x := tensor.New(1, 3, 8, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for _, r := range []float64{1.0, 0.5} {
		if err := nn.CheckGradients(m, nn.Train(r, rng), x, nil, 6); err != nil {
			t.Fatalf("rate %v: %v", r, err)
		}
	}
}

func TestResNetExtractMatchesSliced(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m, _ := NewResNet(ResNetMini(8, NormGroup, 1), rng)
	rates := slicing.NewRateList(0.25, 4)
	x := tensor.New(2, 3, 16, 16)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for _, r := range rates {
		want := slicing.Predict(m, rates, r, x)
		got := slicing.Extract(m, r, rates).Forward(nn.Eval(1), x)
		for i := range want.Data {
			if math.Abs(want.Data[i]-got.Data[i]) > 1e-9 {
				t.Fatalf("rate %v: extracted ResNet differs", r)
			}
		}
	}
}

func TestNNLMForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewNNLM(NNLMMini(50, 8), rng)
	ids := tensor.New(4, 3) // T=4, B=3
	for i := range ids.Data {
		ids.Data[i] = float64(rng.Intn(50))
	}
	for _, r := range slicing.NewRateList(0.25, 8) {
		y := m.Forward(nn.Eval(r), ids)
		if y.Dim(0) != 12 || y.Dim(1) != 50 {
			t.Fatalf("rate %v: NNLM output %v, want [12 50]", r, y.Shape)
		}
	}
}

func TestNNLMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cfg := NNLMMini(20, 4)
	cfg.Dropout = 0 // deterministic for gradient checking
	cfg.Embed, cfg.Hidden = 8, 8
	m := NewNNLM(cfg, rng)
	ids := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	for _, r := range []float64{1.0, 0.5} {
		if err := nn.CheckGradients(m, nn.Train(r, rng), ids, nil, 24); err != nil {
			t.Fatalf("rate %v: %v", r, err)
		}
	}
}

func TestNNLMParamShapePaperScale(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := NewNNLM(NNLMPaper(), rng)
	p, out := cost.Measure(m, []int{35}, 1)
	if out[1] != 10000 {
		t.Fatalf("decoder output %v", out)
	}
	// Embedding 6.5M + LSTM1 4*(650*640+640*640+640) + LSTM2
	// 4*(640*640+640*640+640) + decoder 640*10000+10000 ≈ 19.9M.
	gotM := float64(p.Params) / 1e6
	if gotM < 19 || gotM > 21 {
		t.Fatalf("paper-scale NNLM params %.2fM, want ≈19.9M", gotM)
	}
}

func TestMLPBuildsAndSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := NewMLP(12, []int{32, 32}, 4, 8, rng)
	x := tensor.New(3, 12)
	y := m.Forward(nn.Eval(0.375), x)
	if y.Dim(1) != 4 {
		t.Fatalf("MLP output %v", y.Shape)
	}
}

func TestScaleWidthsHelpers(t *testing.T) {
	v := VGG13Paper().ScaleWidths(1, 2)
	if v.StageWidths[0] != 32 || v.StageWidths[3] != 256 {
		t.Fatalf("scaled VGG widths %v", v.StageWidths)
	}
	r := ResNet164Paper().ScaleWidths(3, 4)
	if r.StageWidths[0] != 12 || r.StemWidth != 12 {
		t.Fatalf("scaled ResNet widths %v stem %d", r.StageWidths, r.StemWidth)
	}
	n := NNLMPaper().ScaleWidths(1, 2)
	if n.Hidden != 320 || n.Embed != 650 {
		t.Fatalf("scaled NNLM %+v", n)
	}
}

func TestSwitchableNormVGGBuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m, _ := NewVGG(VGG13Mini(4, NormSwitchable, 4), rng)
	x := tensor.New(2, 3, 16, 16)
	rates := slicing.NewRateList(0.25, 4)
	for i, r := range rates {
		ctx := &nn.Context{Training: false, Rate: r, WidthIdx: i}
		y := m.Forward(ctx, x)
		if y.Dim(1) != 10 {
			t.Fatalf("switchable VGG output %v", y.Shape)
		}
	}
}

func TestNNLMRecurrentCellVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, cell := range []string{"lstm", "gru", "rnn"} {
		cfg := NNLMMini(30, 4)
		cfg.Cell = cell
		cfg.Embed, cfg.Hidden = 8, 8
		m := NewNNLM(cfg, rng)
		ids := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
		for _, r := range []float64{1.0, 0.5} {
			y := m.Forward(nn.Eval(r), ids)
			if y.Dim(0) != 4 || y.Dim(1) != 30 || !y.AllFinite() {
				t.Fatalf("%s at rate %v: output %v", cell, r, y.Shape)
			}
		}
		// Extraction must support every cell type.
		rates := slicing.NewRateList(0.25, 4)
		want := slicing.Predict(m, rates, 0.5, ids)
		got := slicing.Extract(m, 0.5, rates).Forward(nn.Eval(1), ids)
		for i := range want.Data {
			if math.Abs(want.Data[i]-got.Data[i]) > 1e-9 {
				t.Fatalf("%s: extraction differs", cell)
			}
		}
	}
}

func TestNNLMRejectsUnknownCell(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cfg := NNLMMini(10, 4)
	cfg.Cell = "transformer"
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown cell")
		}
	}()
	NewNNLM(cfg, rng)
}
