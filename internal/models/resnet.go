package models

import (
	"fmt"
	"math/rand"

	"modelslicing/internal/nn"
)

// ResNetConfig describes a pre-activation bottleneck ResNet (He et al.,
// 2016, "Identity Mappings"), the B-Block architecture of Table 3.
type ResNetConfig struct {
	Name       string
	InChannels int
	// StemWidth is the channel count of the initial 3×3 convolution
	// (CIFAR style) or 7×7 stride-2 convolution (ImageNet style).
	StemWidth int
	// StageWidths are bottleneck (inner) widths per stage; block output
	// width is StageWidths[i] × Expansion.
	StageWidths []int
	StageBlocks []int
	Expansion   int
	Classes     int
	Groups      int
	Norm        Norm
	NumWidths   int
	// ImageNetStem selects 7×7/s2 + 3×3 max-pool/s2 instead of plain 3×3.
	ImageNetStem bool
	InputHW      int
}

// ResNet164Paper returns the CIFAR ResNet-164 shape of Table 3 (1.72M
// params): 18 bottleneck blocks per stage at widths 16/32/64.
func ResNet164Paper() ResNetConfig {
	return ResNetConfig{
		Name: "ResNet-164", InChannels: 3, StemWidth: 16, InputHW: 32,
		StageWidths: []int{16, 32, 64}, StageBlocks: []int{18, 18, 18},
		Expansion: 4, Classes: 10, Groups: 8, Norm: NormGroup, NumWidths: 1,
	}
}

// ResNet56x2Paper returns the wide CIFAR ResNet-56-2 shape of Table 3
// (2.35M params): 6 bottleneck blocks per stage at doubled widths 32/64/128.
func ResNet56x2Paper() ResNetConfig {
	return ResNetConfig{
		Name: "ResNet-56-2", InChannels: 3, StemWidth: 16, InputHW: 32,
		StageWidths: []int{32, 64, 128}, StageBlocks: []int{6, 6, 6},
		Expansion: 4, Classes: 10, Groups: 8, Norm: NormGroup, NumWidths: 1,
	}
}

// ResNet50Paper returns the ImageNet ResNet-50 shape of Table 3 (25.56M
// params).
func ResNet50Paper() ResNetConfig {
	return ResNetConfig{
		Name: "ResNet-50", InChannels: 3, StemWidth: 64, InputHW: 224,
		StageWidths: []int{64, 128, 256, 512}, StageBlocks: []int{3, 4, 6, 3},
		Expansion: 4, Classes: 1000, Groups: 8, Norm: NormGroup, NumWidths: 1,
		ImageNetStem: true,
	}
}

// ResNetMini returns the scaled-down ResNet-164 analogue used for training
// on the synthetic CIFAR-like task: 2 blocks per stage at widths 8/8/16.
func ResNetMini(groups int, norm Norm, numWidths int) ResNetConfig {
	return ResNetConfig{
		Name: "ResNet-mini", InChannels: 3, StemWidth: 8, InputHW: 16,
		StageWidths: []int{8, 8, 16}, StageBlocks: []int{2, 2, 2},
		Expansion: 2, Classes: 10, Groups: groups, Norm: norm, NumWidths: numWidths,
	}
}

// ResNetMiniWide returns the ResNet-56-2 analogue (doubled widths).
func ResNetMiniWide(groups int, norm Norm, numWidths int) ResNetConfig {
	return ResNetConfig{
		Name: "ResNet-mini-2", InChannels: 3, StemWidth: 8, InputHW: 16,
		StageWidths: []int{16, 16, 32}, StageBlocks: []int{2, 2, 2},
		Expansion: 2, Classes: 10, Groups: groups, Norm: norm, NumWidths: numWidths,
	}
}

// ScaleWidths returns a copy with stem and stage widths multiplied by
// num/den (fixed-width ensemble baselines).
func (c ResNetConfig) ScaleWidths(num, den int) ResNetConfig {
	out := c
	out.StemWidth = scaleW(c.StemWidth, num, den)
	out.StageWidths = make([]int, len(c.StageWidths))
	for i, w := range c.StageWidths {
		out.StageWidths[i] = scaleW(w, num, den)
	}
	out.Name = fmt.Sprintf("%s-w%d/%d", c.Name, num, den)
	return out
}

func scaleW(w, num, den int) int {
	s := w * num / den
	if s < 1 {
		s = 1
	}
	return s
}

// bottleneck builds one pre-activation bottleneck block:
// GN→ReLU→1×1(in→w) → GN→ReLU→3×3(w→w, stride) → GN→ReLU→1×1(w→out), with
// an identity shortcut when shapes permit and a projection otherwise.
func bottleneck(cfg ResNetConfig, in, width, stride int, rng *rand.Rand) *nn.Residual {
	out := width * cfg.Expansion
	spec := nn.Sliced(cfg.Groups)
	inSpec := spec
	if in == cfg.InChannels {
		inSpec = nn.Fixed()
	}
	body := nn.NewSequential(
		newNorm(cfg.Norm, in, inSpec, cfg.Groups, cfg.NumWidths),
		nn.NewReLU(),
		nn.Conv1x1(in, width, 1, inSpec, spec, rng),
		newNorm(cfg.Norm, width, spec, cfg.Groups, cfg.NumWidths),
		nn.NewReLU(),
		nn.NewConv2D(width, width, 3, 3, stride, 1, spec, spec, false, rng),
		newNorm(cfg.Norm, width, spec, cfg.Groups, cfg.NumWidths),
		nn.NewReLU(),
		nn.Conv1x1(width, out, 1, spec, spec, rng),
	)
	var short nn.Layer
	if in != out || stride != 1 {
		short = nn.Conv1x1(in, out, stride, inSpec, spec, rng)
	}
	return nn.NewResidual(body, short)
}

// NewResNet builds the network. The returned tap indices mark the layer
// count after each stage, for multi-classifier baselines.
func NewResNet(cfg ResNetConfig, rng *rand.Rand) (*nn.Sequential, []int) {
	if len(cfg.StageWidths) != len(cfg.StageBlocks) {
		panic(fmt.Sprintf("models: inconsistent ResNet config %+v", cfg))
	}
	seq := &nn.Sequential{}
	spec := nn.Sliced(cfg.Groups)
	if cfg.ImageNetStem {
		seq.Layers = append(seq.Layers,
			nn.NewConv2D(cfg.InChannels, cfg.StemWidth, 7, 7, 2, 3, nn.Fixed(), spec, false, rng),
			newNorm(cfg.Norm, cfg.StemWidth, spec, cfg.Groups, cfg.NumWidths),
			nn.NewReLU(),
			nn.NewMaxPool2D(3, 2),
		)
	} else {
		seq.Layers = append(seq.Layers,
			nn.Conv3x3(cfg.InChannels, cfg.StemWidth, nn.Fixed(), spec, rng),
		)
	}
	in := cfg.StemWidth
	var taps []int
	for s, width := range cfg.StageWidths {
		for b := 0; b < cfg.StageBlocks[s]; b++ {
			stride := 1
			if b == 0 && s > 0 {
				stride = 2
			}
			seq.Layers = append(seq.Layers, bottleneck(cfg, in, width, stride, rng))
			in = width * cfg.Expansion
		}
		taps = append(taps, len(seq.Layers))
	}
	head := nn.NewDense(in, cfg.Classes, spec, nn.Fixed(), true, rng)
	// Output rescaling: keep logit scale independent of the active fan-in
	// (see NewVGG).
	head.Rescale = true
	seq.Layers = append(seq.Layers,
		newNorm(cfg.Norm, in, spec, cfg.Groups, cfg.NumWidths),
		nn.NewReLU(),
		nn.NewGlobalAvgPool(),
		head,
	)
	return seq, taps
}
