// Package models builds the network architectures of the paper's evaluation
// (Table 3): VGG, pre-activation bottleneck ResNet, wide ResNet, the NNLM
// language model, and an MLP for quickstarts — all slicing-ready, plus
// exact paper-shape constructors used to validate the cost model against the
// parameter counts the paper reports.
package models

import (
	"fmt"

	"modelslicing/internal/nn"
)

// Norm selects the normalization layer family for convolutional models.
type Norm int

const (
	// NormGroup is group normalization — the paper's choice for model
	// slicing (Section 3.2).
	NormGroup Norm = iota
	// NormBatch is standard batch normalization — the conventional
	// baseline.
	NormBatch
	// NormSwitchable keeps one BatchNorm per scheduled width — the
	// SlimmableNet baseline of Table 1.
	NormSwitchable
)

// String implements fmt.Stringer.
func (n Norm) String() string {
	switch n {
	case NormGroup:
		return "group-norm"
	case NormBatch:
		return "batch-norm"
	case NormSwitchable:
		return "switchable-batch-norm"
	default:
		return fmt.Sprintf("Norm(%d)", int(n))
	}
}

// newNorm builds a channel-normalization layer of the given family.
// numWidths is the scheduled width count (used by NormSwitchable only);
// normGroups is the group-norm group count (bounded by the channel count).
func newNorm(kind Norm, channels int, spec nn.SliceSpec, normGroups, numWidths int) nn.Layer {
	switch kind {
	case NormGroup:
		g := normGroups
		if g > channels {
			g = channels
		}
		// Keep compatibility between slice groups and norm groups: use the
		// slice group count when slicing is enabled (Section 3.2 slices the
		// normalization at group granularity).
		if spec.Slice {
			g = spec.Groups
		}
		return nn.NewGroupNorm(channels, g, spec, 1e-5)
	case NormBatch:
		return nn.NewBatchNorm(channels, spec)
	case NormSwitchable:
		return nn.NewSwitchableBatchNorm(channels, spec, numWidths)
	default:
		panic(fmt.Sprintf("models: unknown norm kind %d", int(kind)))
	}
}
