package models

import (
	"fmt"
	"math/rand"

	"modelslicing/internal/nn"
)

// NNLMConfig describes the neural-network language model of Section 5.2: an
// input embedding, a stack of LSTM layers, and a dense decoder, with model
// slicing applied to the recurrent layers and the decoder input ("all the
// hidden layers except the input and output layers") and output rescaling on
// the decoder.
type NNLMConfig struct {
	Vocab  int
	Embed  int
	Hidden int
	Layers int
	// Dropout follows the embedding and every LSTM layer (the paper uses
	// 0.5 on PTB).
	Dropout float64
	Groups  int
	// RescaleLSTM applies input/hidden rescaling inside the LSTMs; the
	// decoder always rescales its sliced input (the paper's "output dense
	// layer with output rescaling").
	RescaleLSTM bool
	// Cell selects the recurrent cell: "lstm" (default), "gru" or "rnn" —
	// Section 3.3 applies model slicing to all of them identically.
	Cell string
}

// NNLMPaper returns the PTB configuration of Section 5.2.2: embedding 650,
// two LSTM layers of 640 units.
func NNLMPaper() NNLMConfig {
	return NNLMConfig{
		Vocab: 10000, Embed: 650, Hidden: 640, Layers: 2,
		Dropout: 0.5, Groups: 16, RescaleLSTM: true,
	}
}

// NNLMMini returns the scaled-down configuration trained on the synthetic
// Markov corpus.
func NNLMMini(vocab, groups int) NNLMConfig {
	return NNLMConfig{
		Vocab: vocab, Embed: 32, Hidden: 64, Layers: 2,
		Dropout: 0.25, Groups: groups, RescaleLSTM: true,
	}
}

// ScaleWidths returns a copy with embed and hidden scaled by num/den (the
// fixed-width NNLM ensemble of Figure 4). The embedding dimension is kept —
// only hidden layers vary, as in the paper's varying-width ensemble.
func (c NNLMConfig) ScaleWidths(num, den int) NNLMConfig {
	out := c
	out.Hidden = scaleW(c.Hidden, num, den)
	return out
}

// NewNNLM builds the language model. Input is a [T, B] tensor of token ids;
// output is [T·B, Vocab] logits aligned with data.LMBatches labels.
func NewNNLM(cfg NNLMConfig, rng *rand.Rand) *nn.Sequential {
	seq := &nn.Sequential{}
	seq.Layers = append(seq.Layers, nn.NewEmbedding(cfg.Vocab, cfg.Embed, rng))
	if cfg.Dropout > 0 {
		seq.Layers = append(seq.Layers, nn.NewDropout(cfg.Dropout))
	}
	in := cfg.Embed
	inSpec := nn.Fixed() // embedding output is full width
	hidSpec := nn.Sliced(cfg.Groups)
	for l := 0; l < cfg.Layers; l++ {
		var cell nn.Layer
		switch cfg.Cell {
		case "", "lstm":
			cell = nn.NewLSTM(in, cfg.Hidden, inSpec, hidSpec, cfg.RescaleLSTM, rng)
		case "gru":
			cell = nn.NewGRU(in, cfg.Hidden, inSpec, hidSpec, cfg.RescaleLSTM, rng)
		case "rnn":
			cell = nn.NewRNN(in, cfg.Hidden, inSpec, hidSpec, cfg.RescaleLSTM, rng)
		default:
			panic(fmt.Sprintf("models: unknown recurrent cell %q", cfg.Cell))
		}
		seq.Layers = append(seq.Layers, cell)
		if cfg.Dropout > 0 {
			seq.Layers = append(seq.Layers, nn.NewDropout(cfg.Dropout))
		}
		in = cfg.Hidden
		inSpec = hidSpec
	}
	dec := nn.NewDense(cfg.Hidden, cfg.Vocab, hidSpec, nn.Fixed(), true, rng)
	dec.Rescale = true
	seq.Layers = append(seq.Layers, nn.NewTimeFlatten(), dec)
	return seq
}

// NewMLP builds a plain multi-layer perceptron with sliced hidden layers —
// the quickstart model.
func NewMLP(in int, hidden []int, classes, groups int, rng *rand.Rand) *nn.Sequential {
	seq := &nn.Sequential{}
	prev := in
	prevSpec := nn.Fixed()
	for _, h := range hidden {
		spec := nn.Sliced(groups)
		seq.Layers = append(seq.Layers,
			nn.NewDense(prev, h, prevSpec, spec, true, rng),
			nn.NewReLU(),
		)
		prev = h
		prevSpec = spec
	}
	seq.Layers = append(seq.Layers,
		nn.NewDense(prev, classes, prevSpec, nn.Fixed(), true, rng))
	return seq
}
