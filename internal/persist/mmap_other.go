//go:build !unix

package persist

import (
	"io"
	"os"
	"unsafe"
)

func unsafeBytes(words []uint64) []byte {
	if len(words) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)
}

// mapFile on hosts without mmap reads the file into an 8-byte-aligned buffer
// (allocated as []uint64 so FromBytes' alignment requirement holds). Open
// loses its O(1) property here but keeps its API; the Checkpoint still binds
// zero-copy tensors over the buffer.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	words := make([]uint64, (size+7)/8)
	buf := unsafeBytes(words)[:size]
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, nil, err
	}
	return buf, func() error { return nil }, nil
}
