package persist

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"modelslicing/internal/models"
	"modelslicing/internal/nn"
	"modelslicing/internal/tensor"
)

func TestOpenBindServesSavedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	src := models.NewMLP(8, []int{16}, 4, 4, rng)
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := SaveEpoch(path, src.Params(), 42); err != nil {
		t.Fatal(err)
	}
	ck, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if ck.Epoch != 42 {
		t.Fatalf("Epoch = %d, want 42", ck.Epoch)
	}
	if ck.CRC == 0 {
		t.Fatal("checkpoint CRC is zero")
	}
	if err := ck.Verify(); err != nil {
		t.Fatal(err)
	}
	dst := models.NewMLP(8, []int{16}, 4, 4, rand.New(rand.NewSource(99)))
	if err := ck.Bind(dst.Params()); err != nil {
		t.Fatal(err)
	}
	for _, p := range dst.Params() {
		if !p.Foreign {
			t.Fatalf("param %q not marked Foreign after Bind", p.Name)
		}
	}
	x := tensor.New(2, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	want := src.Forward(nn.Eval(1), x)
	got := dst.Forward(nn.Eval(1), x)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatal("mmap-bound model differs from saved model")
		}
	}
}

func TestOpenRejectsLegacyAndGarbage(t *testing.T) {
	dir := t.TempDir()
	v2 := filepath.Join(dir, "v2.bin")
	if err := SaveV2(v2, testModel(21)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(v2); err != ErrLegacyFormat {
		t.Fatalf("Open(v2) = %v, want ErrLegacyFormat", err)
	}
	junk := filepath.Join(dir, "junk.bin")
	if err := os.WriteFile(junk, []byte("not a checkpoint at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(junk); err == nil {
		t.Fatal("Open(junk) succeeded")
	}
}

func TestBindRejectsWrongArchitecture(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := Save(path, testModel(22)); err != nil {
		t.Fatal(err)
	}
	ck, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	rng := rand.New(rand.NewSource(23))
	if err := ck.Bind(models.NewMLP(8, []int{32}, 4, 4, rng).Params()); err == nil {
		t.Fatal("Bind accepted a wrong-width model")
	}
	wrong := models.NewMLP(8, []int{32}, 4, 4, rng).Params()
	if err := ck.Bind(wrong); err == nil {
		t.Fatal("Bind accepted a wrong model")
	}
	// The failed Bind must not have half-bound the model.
	for _, p := range wrong {
		if p.Foreign {
			t.Fatalf("param %q left Foreign by a failed Bind", p.Name)
		}
	}
	if err := ck.Bind(models.NewMLP(8, []int{16, 16}, 4, 4, rng).Params()); err == nil {
		t.Fatal("Bind accepted a wrong-depth model")
	}
}

// TestV1CrossLoadsToV3 drives the full format history through one model:
// a v1 checkpoint loads, re-saves as v3, and the v3 artifact opens and
// verifies with bit-identical weights.
func TestV1CrossLoadsToV3(t *testing.T) {
	dir := t.TempDir()
	src := testModel(24)
	v2 := filepath.Join(dir, "v2.bin")
	if err := SaveV2(v2, src); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(v2)
	if err != nil {
		t.Fatal(err)
	}
	v1 := filepath.Join(dir, "v1.bin")
	if err := os.WriteFile(v1, append([]byte(magicV1), raw[len(magicV2):len(raw)-4]...), 0o644); err != nil {
		t.Fatal(err)
	}
	mid := testModel(25)
	if err := Load(v1, mid); err != nil {
		t.Fatal(err)
	}
	v3 := filepath.Join(dir, "v3.bin")
	if err := Save(v3, mid); err != nil {
		t.Fatal(err)
	}
	// Both the parse-copy Load and the mmap Open of the v3 artifact must
	// reproduce the original weights bit-for-bit.
	dst := testModel(26)
	if err := Load(v3, dst); err != nil {
		t.Fatal(err)
	}
	ck, err := Open(v3)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	bound := testModel(27)
	if err := ck.Bind(bound); err != nil {
		t.Fatal(err)
	}
	for i, p := range src {
		for j := range p.Value.Data {
			if p.Value.Data[j] != dst[i].Value.Data[j] {
				t.Fatal("v1→v3 Load round trip differs")
			}
			if p.Value.Data[j] != bound[i].Value.Data[j] {
				t.Fatal("v1→v3 Open round trip differs")
			}
		}
	}
}

// TestOpenRejectsTornAtEverySectionBoundary truncates a v3 checkpoint at
// each section's start and end (and one byte either side): every cut must be
// refused by Open/Verify and by the parse-copy Load.
func TestOpenRejectsTornAtEverySectionBoundary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	if err := Save(path, testModel(28)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var cuts []int
	for _, s := range ck.sections {
		for _, off := range []int{int(s.off) - 1, int(s.off), int(s.off) + 1, int(s.off+s.length) - 1, int(s.off + s.length)} {
			if off > 0 && off < len(raw) {
				cuts = append(cuts, off)
			}
		}
	}
	ck.Close()
	torn := filepath.Join(dir, "torn.bin")
	for _, off := range cuts {
		if err := os.WriteFile(torn, raw[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		if c, err := Open(torn); err == nil {
			verr := c.Verify()
			c.Close()
			if verr == nil {
				t.Fatalf("v3 torn at %d/%d opened and verified", off, len(raw))
			}
		}
		if err := Load(torn, testModel(29)); err == nil {
			t.Fatalf("v3 torn at %d/%d loaded without error", off, len(raw))
		}
	}
}

// TestVerifyRejectsBitFlipAtEverySectionBoundary flips a byte at each
// section's first and last payload byte, in the inter-section padding, and in
// the header: Verify (after a succeeding Open, when the header still parses)
// and Load must reject every one.
func TestVerifyRejectsBitFlipAtEverySectionBoundary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	if err := Save(path, testModel(30)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	flips := []int{0, len(magicV3) + 3, len(magicV3) + 12} // magic, hdrLen, header body
	prevEnd := int(ck.headerEnd())
	for _, s := range ck.sections {
		if int(s.off) > prevEnd {
			flips = append(flips, prevEnd) // padding byte before the section
		}
		flips = append(flips, int(s.off), int(s.off+s.length)-1)
		prevEnd = int(s.off + s.length)
	}
	ck.Close()
	flipped := filepath.Join(dir, "flipped.bin")
	for _, off := range flips {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		if err := os.WriteFile(flipped, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if c, err := Open(flipped); err == nil {
			verr := c.Verify()
			c.Close()
			if verr == nil {
				t.Fatalf("v3 with byte %d flipped opened and verified", off)
			}
		}
		if err := Load(flipped, testModel(31)); err == nil {
			t.Fatalf("v3 with byte %d flipped loaded without error", off)
		}
	}
}

func TestLoadIntoForeignModelCopiesOnWrite(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.bin")
	b := filepath.Join(dir, "b.bin")
	if err := Save(a, testModel(32)); err != nil {
		t.Fatal(err)
	}
	if err := Save(b, testModel(33)); err != nil {
		t.Fatal(err)
	}
	ck, err := Open(a)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	m := testModel(34)
	if err := ck.Bind(m); err != nil {
		t.Fatal(err)
	}
	// Loading different weights into a model bound over a read-only mapping
	// must detach the params (writing through the mapping would fault).
	if err := Load(b, m); err != nil {
		t.Fatal(err)
	}
	want := testModel(33)
	for i, p := range m {
		if p.Foreign {
			t.Fatalf("param %q still Foreign after Load", p.Name)
		}
		for j := range p.Value.Data {
			if p.Value.Data[j] != want[i].Value.Data[j] {
				t.Fatal("Load into bound model produced wrong weights")
			}
		}
	}
}

// TestSaveSteadyStateAllocs is the satellite regression test: once the
// encoder pool is warm, periodic saves must not allocate proportionally to
// the parameter count (the old writer built the whole payload through
// binary.Write each epoch).
func TestSaveSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race (sync.Pool sheds items)")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	small := testModel(35)
	big := models.NewMLP(8, []int{256, 256}, 4, 4, rand.New(rand.NewSource(36))).Params()
	run := func(params []*nn.Param) float64 {
		// Warm the pool (and grow its buffer) outside the measurement.
		if err := Save(path, params); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(5, func() {
			if err := Save(path, params); err != nil {
				t.Fatal(err)
			}
		})
	}
	smallAllocs := run(small)
	bigAllocs := run(big)
	// The fixed overhead (temp file, name strings, errors plumbing) is fine;
	// what must not happen is allocations scaling with parameter bytes
	// (~530k floats in big vs ~200 in small).
	if bigAllocs > smallAllocs+16 {
		t.Fatalf("steady-state Save allocations scale with model size: %v (small) vs %v (big)",
			smallAllocs, bigAllocs)
	}
}

func TestFromBytesRejectsBadBuffers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromBytes accepted a size mismatch")
		}
	}()
	tensor.FromBytes(make([]byte, 15), 2)
}
