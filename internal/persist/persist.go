// Package persist saves and loads model parameters in a compact binary
// checkpoint format (magic + per-parameter name, shape and float64 payload),
// so trained slicing models can be deployed by cmd/mstrain and the examples.
package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"modelslicing/internal/nn"
)

const magic = "MSLC0001"

// Save writes the parameters of a model to path.
func Save(path string, params []*nn.Param) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(magic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(w, p.Name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(p.Value.Shape))); err != nil {
			return err
		}
		for _, d := range p.Value.Shape {
			if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		if err := binary.Write(w, binary.LittleEndian, p.Value.Data); err != nil {
			return err
		}
	}
	return w.Flush()
}

// Load reads a checkpoint into the parameters of a model built with the same
// architecture (names and shapes must match in order).
func Load(path string, params []*nn.Param) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil {
		return fmt.Errorf("persist: reading header: %w", err)
	}
	if string(head) != magic {
		return fmt.Errorf("persist: %s is not a model-slicing checkpoint", path)
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if int(n) != len(params) {
		return fmt.Errorf("persist: checkpoint has %d params, model has %d", n, len(params))
	}
	for i, p := range params {
		name, err := readString(r)
		if err != nil {
			return err
		}
		if name != p.Name {
			return fmt.Errorf("persist: param %d is %q in checkpoint but %q in model", i, name, p.Name)
		}
		var rank uint32
		if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
			return err
		}
		if int(rank) != len(p.Value.Shape) {
			return fmt.Errorf("persist: param %q rank mismatch", name)
		}
		for j := range p.Value.Shape {
			var d uint32
			if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
				return err
			}
			if int(d) != p.Value.Shape[j] {
				return fmt.Errorf("persist: param %q shape mismatch at dim %d: %d vs %d",
					name, j, d, p.Value.Shape[j])
			}
		}
		if err := binary.Read(r, binary.LittleEndian, p.Value.Data); err != nil {
			return err
		}
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("persist: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
