// Package persist saves and loads model parameters in a compact binary
// checkpoint format (magic + per-parameter name, shape and float64 payload),
// so trained slicing models can be deployed by cmd/mstrain and the examples.
//
// Checkpoints are crash-safe: Save writes to a temporary file in the target
// directory, fsyncs it, and renames it over the destination — a crash at any
// point leaves either the old checkpoint or the new one, never a torn mix.
// The current format (magic "MSLC0002") ends in a CRC32 of everything before
// it, and Load refuses to copy a single byte into the model until the
// checksum has verified over the whole file; legacy "MSLC0001" checkpoints
// (no checksum) still load.
package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"modelslicing/internal/faults"
	"modelslicing/internal/nn"
)

const (
	magicV1 = "MSLC0001" // legacy: no checksum trailer
	magicV2 = "MSLC0002" // current: CRC32-IEEE over magic+body appended
)

// Save atomically writes the parameters of a model to path: the bytes go to
// a temporary file in path's directory, are fsynced, and are renamed into
// place — readers (and crashes) see the old checkpoint or the new one in
// full, never a partial write. The file ends in a CRC32 over everything
// before it, so Load can reject torn or bit-flipped checkpoints outright.
func Save(path string, params []*nn.Param) error {
	if err := faults.ErrOn(faults.DiskError); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	tmp := f.Name()
	// Any failure from here on leaves no debris: the temp file is removed
	// and the real checkpoint was never touched.
	defer func() {
		if f != nil {
			f.Close()
		}
		if tmp != "" {
			os.Remove(tmp)
		}
	}()

	sum := crc32.NewIEEE()
	w := bufio.NewWriter(io.MultiWriter(f, sum))
	if _, err := w.WriteString(magicV2); err != nil {
		return err
	}
	if err := writeBody(w, params); err != nil {
		return err
	}
	// Flush the body through the CRC before reading it, then append the
	// trailer straight to the file (the checksum must not cover itself).
	if err := w.Flush(); err != nil {
		return err
	}
	if err := binary.Write(f, binary.LittleEndian, sum.Sum32()); err != nil {
		return err
	}
	// Durability order: file contents reach disk before the rename publishes
	// them, and the directory entry reaches disk before Save claims success.
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		f = nil
		return err
	}
	f = nil
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	tmp = ""
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Filesystems that refuse directory fsync (some CI tmpfs mounts) are not an
// integrity problem — the rename itself is still atomic — so refusal is not
// an error.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// writeBody writes the parameter sections (everything after the magic).
func writeBody(w io.Writer, params []*nn.Param) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(w, p.Name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(p.Value.Shape))); err != nil {
			return err
		}
		for _, d := range p.Value.Shape {
			if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		if err := binary.Write(w, binary.LittleEndian, p.Value.Data); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a checkpoint into the parameters of a model built with the same
// architecture (names and shapes must match in order). A current-format
// checkpoint is checksum-verified in full before any parameter is written,
// so a torn or corrupted file can never leave the model half-loaded with
// garbage.
func Load(path string, params []*nn.Param) error {
	if err := faults.ErrOn(faults.DiskError); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if len(raw) < len(magicV2) {
		return fmt.Errorf("persist: %s is not a model-slicing checkpoint", path)
	}
	switch string(raw[:len(magicV2)]) {
	case magicV2:
		if len(raw) < len(magicV2)+4 {
			return fmt.Errorf("persist: %s: truncated checkpoint (no checksum)", path)
		}
		body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
		want := binary.LittleEndian.Uint32(trailer)
		if got := crc32.ChecksumIEEE(body); got != want {
			return fmt.Errorf("persist: %s: checksum mismatch (%08x != %08x): checkpoint is corrupt", path, got, want)
		}
		return readBody(bytes.NewReader(body[len(magicV2):]), params)
	case magicV1:
		// Legacy checkpoints carry no checksum; parse defensively and trust
		// the structural checks.
		return readBody(bytes.NewReader(raw[len(magicV1):]), params)
	default:
		return fmt.Errorf("persist: %s is not a model-slicing checkpoint", path)
	}
}

// readBody parses the parameter sections into params.
func readBody(r io.Reader, params []*nn.Param) error {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if int(n) != len(params) {
		return fmt.Errorf("persist: checkpoint has %d params, model has %d", n, len(params))
	}
	for i, p := range params {
		name, err := readString(r)
		if err != nil {
			return err
		}
		if name != p.Name {
			return fmt.Errorf("persist: param %d is %q in checkpoint but %q in model", i, name, p.Name)
		}
		var rank uint32
		if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
			return err
		}
		if int(rank) != len(p.Value.Shape) {
			return fmt.Errorf("persist: param %q rank mismatch", name)
		}
		for j := range p.Value.Shape {
			var d uint32
			if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
				return err
			}
			if int(d) != p.Value.Shape[j] {
				return fmt.Errorf("persist: param %q shape mismatch at dim %d: %d vs %d",
					name, j, d, p.Value.Shape[j])
			}
		}
		if err := binary.Read(r, binary.LittleEndian, p.Value.Data); err != nil {
			return err
		}
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("persist: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
