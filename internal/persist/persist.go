// Package persist saves and loads model parameters in a binary checkpoint
// format, so trained slicing models can be deployed by cmd/mstrain, the
// servers and the examples.
//
// Checkpoints are crash-safe: Save writes to a temporary file in the target
// directory, fsyncs it, and renames it over the destination — a crash at any
// point leaves either the old checkpoint or the new one, never a torn mix.
// The current format (magic "MSLC0003", see format3.go) is sectioned and
// 64-byte-aligned with a CRC per section, so Open can mmap the payloads and
// Bind a model over them without copying a byte; Load parse-copies the same
// file portably after verifying every checksum. Legacy "MSLC0002" (whole-file
// CRC trailer) and "MSLC0001" (no checksum) checkpoints still load
// bit-identically.
package persist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"modelslicing/internal/faults"
	"modelslicing/internal/nn"
)

const (
	magicV1 = "MSLC0001" // legacy: no checksum trailer
	magicV2 = "MSLC0002" // legacy: CRC32-IEEE over magic+body appended
	// magicV3 (the current format) lives in format3.go.
)

// Save atomically writes the parameters of a model to path in the current v3
// format: the bytes go to a temporary file in path's directory, are fsynced,
// and are renamed into place — readers (and crashes) see the old checkpoint
// or the new one in full, never a partial write. The whole image is encoded
// into one pooled buffer and written with a single syscall, so periodic
// saves in a training loop don't re-allocate the payload every epoch.
func Save(path string, params []*nn.Param) error {
	return SaveEpoch(path, params, 0)
}

// SaveEpoch is Save with the training epoch recorded in the v3 header, where
// Open surfaces it as Checkpoint.Epoch (and msserver as model identity).
func SaveEpoch(path string, params []*nn.Param, epoch uint64) error {
	e := encPool.Get().(*encBuf)
	defer encPool.Put(e)
	encodeV3(e, params, epoch)
	return writeAtomic(path, e.b)
}

// SaveV2 writes the legacy v2 format (magic + records + whole-file CRC32
// trailer). It exists for cross-format tests and the cold-start benchmark;
// new checkpoints should use Save.
func SaveV2(path string, params []*nn.Param) error {
	e := encPool.Get().(*encBuf)
	defer encPool.Put(e)
	e.b = e.b[:0]
	e.b = append(e.b, magicV2...)
	var buf bytes.Buffer
	if err := writeBody(&buf, params); err != nil {
		return err
	}
	e.b = append(e.b, buf.Bytes()...)
	e.u32(crc32.ChecksumIEEE(e.b))
	return writeAtomic(path, e.b)
}

// writeAtomic publishes data at path via the temp-fsync-rename dance.
func writeAtomic(path string, data []byte) error {
	if err := faults.ErrOn(faults.DiskError); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	tmp := f.Name()
	// Any failure from here on leaves no debris: the temp file is removed
	// and the real checkpoint was never touched.
	defer func() {
		if f != nil {
			f.Close()
		}
		if tmp != "" {
			os.Remove(tmp)
		}
	}()
	if _, err := f.Write(data); err != nil {
		return err
	}
	// Durability order: file contents reach disk before the rename publishes
	// them, and the directory entry reaches disk before Save claims success.
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		f = nil
		return err
	}
	f = nil
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	tmp = ""
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Filesystems that refuse directory fsync (some CI tmpfs mounts) are not an
// integrity problem — the rename itself is still atomic — so refusal is not
// an error.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// writeBody writes the parameter sections (everything after the magic).
func writeBody(w io.Writer, params []*nn.Param) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(w, p.Name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(p.Value.Shape))); err != nil {
			return err
		}
		for _, d := range p.Value.Shape {
			if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		if err := binary.Write(w, binary.LittleEndian, p.Value.Data); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a checkpoint into the parameters of a model built with the same
// architecture (names and shapes must match in order). A current-format
// checkpoint is checksum-verified in full before any parameter is written,
// so a torn or corrupted file can never leave the model half-loaded with
// garbage.
func Load(path string, params []*nn.Param) error {
	if err := faults.ErrOn(faults.DiskError); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if len(raw) < len(magicV2) {
		return fmt.Errorf("persist: %s is not a model-slicing checkpoint", path)
	}
	switch string(raw[:len(magicV2)]) {
	case magicV3:
		return loadV3(raw, path, params)
	case magicV2:
		if len(raw) < len(magicV2)+4 {
			return fmt.Errorf("persist: %s: truncated checkpoint (no checksum)", path)
		}
		body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
		want := binary.LittleEndian.Uint32(trailer)
		if got := crc32.ChecksumIEEE(body); got != want {
			return fmt.Errorf("persist: %s: checksum mismatch (%08x != %08x): checkpoint is corrupt", path, got, want)
		}
		return readBody(bytes.NewReader(body[len(magicV2):]), params)
	case magicV1:
		// Legacy checkpoints carry no checksum; parse defensively and trust
		// the structural checks.
		return readBody(bytes.NewReader(raw[len(magicV1):]), params)
	default:
		return fmt.Errorf("persist: %s is not a model-slicing checkpoint", path)
	}
}

// readBody parses the parameter sections into params.
func readBody(r io.Reader, params []*nn.Param) error {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if int(n) != len(params) {
		return fmt.Errorf("persist: checkpoint has %d params, model has %d", n, len(params))
	}
	for i, p := range params {
		name, err := readString(r)
		if err != nil {
			return err
		}
		if name != p.Name {
			return fmt.Errorf("persist: param %d is %q in checkpoint but %q in model", i, name, p.Name)
		}
		var rank uint32
		if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
			return err
		}
		if int(rank) != len(p.Value.Shape) {
			return fmt.Errorf("persist: param %q rank mismatch", name)
		}
		for j := range p.Value.Shape {
			var d uint32
			if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
				return err
			}
			if int(d) != p.Value.Shape[j] {
				return fmt.Errorf("persist: param %q shape mismatch at dim %d: %d vs %d",
					name, j, d, p.Value.Shape[j])
			}
		}
		// A model bound over a read-only mapping must not be written
		// through; copy-on-write detaches it first.
		p.EnsureMutable()
		if err := binary.Read(r, binary.LittleEndian, p.Value.Data); err != nil {
			return err
		}
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("persist: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
