package persist

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"modelslicing/internal/models"
	"modelslicing/internal/nn"
	"modelslicing/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := models.NewMLP(8, []int{16}, 4, 4, rng)
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := Save(path, src.Params()); err != nil {
		t.Fatal(err)
	}
	dst := models.NewMLP(8, []int{16}, 4, 4, rand.New(rand.NewSource(99)))
	if err := Load(path, dst.Params()); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	want := src.Forward(nn.Eval(1), x)
	got := dst.Forward(nn.Eval(1), x)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatal("loaded model differs from saved model")
		}
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := models.NewMLP(8, []int{16}, 4, 4, rng)
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := Save(path, src.Params()); err != nil {
		t.Fatal(err)
	}
	other := models.NewMLP(8, []int{32}, 4, 4, rng)
	if err := Load(path, other.Params()); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
	fewer := models.NewMLP(8, []int{16, 16}, 4, 4, rng)
	if err := Load(path, fewer.Params()); err == nil {
		t.Fatal("expected param-count error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.bin")
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	m := models.NewMLP(8, []int{16}, 4, 4, rng)
	if err := Load(path, m.Params()); err == nil {
		t.Fatal("expected magic-mismatch error")
	}
}
