package persist

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"modelslicing/internal/faults"
	"modelslicing/internal/models"
	"modelslicing/internal/nn"
	"modelslicing/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := models.NewMLP(8, []int{16}, 4, 4, rng)
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := Save(path, src.Params()); err != nil {
		t.Fatal(err)
	}
	dst := models.NewMLP(8, []int{16}, 4, 4, rand.New(rand.NewSource(99)))
	if err := Load(path, dst.Params()); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	want := src.Forward(nn.Eval(1), x)
	got := dst.Forward(nn.Eval(1), x)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatal("loaded model differs from saved model")
		}
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := models.NewMLP(8, []int{16}, 4, 4, rng)
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := Save(path, src.Params()); err != nil {
		t.Fatal(err)
	}
	other := models.NewMLP(8, []int{32}, 4, 4, rng)
	if err := Load(path, other.Params()); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
	fewer := models.NewMLP(8, []int{16, 16}, 4, 4, rng)
	if err := Load(path, fewer.Params()); err == nil {
		t.Fatal("expected param-count error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.bin")
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	m := models.NewMLP(8, []int{16}, 4, 4, rng)
	if err := Load(path, m.Params()); err == nil {
		t.Fatal("expected magic-mismatch error")
	}
}

// params returns a fresh model's parameter list with a deterministic seed.
func testModel(seed int64) []*nn.Param {
	return models.NewMLP(8, []int{16}, 4, 4, rand.New(rand.NewSource(seed))).Params()
}

func TestLoadRejectsEveryTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	if err := Save(path, testModel(4)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A checkpoint cut at any byte offset — the torn writes a non-atomic
	// save could leave behind — must refuse to load. Stride keeps the sweep
	// fast; the first and last few bytes are covered exactly.
	cut := filepath.Join(dir, "cut.bin")
	offsets := []int{0, 1, 7, 8, 11, len(raw) - 5, len(raw) - 1}
	for off := 16; off < len(raw)-8; off += 97 {
		offsets = append(offsets, off)
	}
	for _, off := range offsets {
		if err := os.WriteFile(cut, raw[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := Load(cut, testModel(5)); err == nil {
			t.Fatalf("checkpoint truncated at %d/%d bytes loaded without error", off, len(raw))
		}
	}
}

func TestLoadRejectsBitFlips(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	if err := Save(path, testModel(6)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := filepath.Join(dir, "flipped.bin")
	for _, off := range []int{0, len(magicV2) + 2, len(raw) / 2, len(raw) - 2} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		if err := os.WriteFile(flipped, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := Load(flipped, testModel(7)); err == nil {
			t.Fatalf("checkpoint with byte %d flipped loaded without error", off)
		}
	}
}

func TestSaveIsAtomicUnderCrashDebris(t *testing.T) {
	// Simulate a crash mid-save: a stray partial temp file next to a good
	// checkpoint. The real path must still load the old model bit-for-bit,
	// and a subsequent Save must succeed and replace it cleanly.
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	src := testModel(8)
	if err := Save(path, src); err != nil {
		t.Fatal(err)
	}
	debris := filepath.Join(dir, ".ckpt.bin.tmp-12345")
	if err := os.WriteFile(debris, []byte(magicV2+"torn"), 0o600); err != nil {
		t.Fatal(err)
	}
	dst := testModel(9)
	if err := Load(path, dst); err != nil {
		t.Fatalf("good checkpoint failed to load beside crash debris: %v", err)
	}
	for i, p := range src {
		for j := range p.Value.Data {
			if p.Value.Data[j] != dst[i].Value.Data[j] {
				t.Fatal("loaded params differ from saved params")
			}
		}
	}
	if err := Save(path, testModel(10)); err != nil {
		t.Fatalf("re-save beside crash debris: %v", err)
	}
}

func TestLoadAcceptsLegacyV1(t *testing.T) {
	// A pre-checksum checkpoint (magic MSLC0001, no CRC trailer) must keep
	// loading. Build one by rewriting a v2 file: swap the magic and drop the
	// trailer — the body layout is identical across those two versions.
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	src := testModel(11)
	if err := SaveV2(path, src); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	legacy := append([]byte(magicV1), raw[len(magicV2):len(raw)-4]...)
	v1 := filepath.Join(dir, "legacy.bin")
	if err := os.WriteFile(v1, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	dst := testModel(12)
	if err := Load(v1, dst); err != nil {
		t.Fatalf("legacy v1 checkpoint failed to load: %v", err)
	}
	for i, p := range src {
		for j := range p.Value.Data {
			if p.Value.Data[j] != dst[i].Value.Data[j] {
				t.Fatal("legacy load differs from saved params")
			}
		}
	}
}

func TestDiskErrorFaultInjection(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	src := testModel(13)
	if err := Save(path, src); err != nil {
		t.Fatal(err)
	}
	if err := faults.Enable(faults.DiskError, "on"); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, src); err == nil {
		t.Fatal("Save under disk-error fault succeeded")
	}
	if err := Load(path, testModel(14)); err == nil {
		t.Fatal("Load under disk-error fault succeeded")
	}
	if got := faults.Fired(faults.DiskError); got != 2 {
		t.Fatalf("disk-error fired %d times, want 2", got)
	}
	faults.Reset()
	// The injected failures left the real checkpoint untouched.
	if err := Load(path, testModel(15)); err != nil {
		t.Fatalf("checkpoint damaged by injected-fault Save: %v", err)
	}
}
