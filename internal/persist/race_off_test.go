//go:build !race

package persist

// raceEnabled mirrors the race detector's build tag. AllocsPerRun
// assertions skip under -race: sync.Pool randomly drops items there by
// design (to provoke races), so pooled paths report spurious allocations.
const raceEnabled = false
