package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sync"
	"unsafe"

	"modelslicing/internal/faults"
	"modelslicing/internal/nn"
	"modelslicing/internal/tensor"
)

// Format v3 ("MSLC0003") is the mmap-able checkpoint layout: a CRC-protected
// section table up front, then one 64-byte-aligned raw little-endian float64
// payload per parameter. Because payloads sit at fixed aligned offsets with
// no per-element framing, Open maps the file and binds tensors straight over
// the pages — cold start is O(1) page mapping instead of a parse-and-copy of
// every weight, and co-located replicas serving the same artifact share page
// cache. On disk:
//
//	magic   "MSLC0003"                               8 bytes
//	hdrLen  uint64                                   8 bytes
//	header (hdrLen bytes):
//	    epoch    uint64      training epoch the artifact was saved at
//	    count    uint32      number of sections
//	    per section:
//	        name    uint32 length + bytes
//	        kind    uint32   (0 = raw float64 weights; future: packed panels)
//	        rank    uint32 + rank × uint32 dims
//	        offset  uint64   absolute, 64-byte aligned
//	        length  uint64   payload bytes
//	        crc     uint32   CRC32-IEEE of the payload
//	hdrCRC  uint32           CRC32-IEEE over everything above
//	zero padding to the first section offset; zero padding between sections
//
// hdrCRC covers every section CRC, so it doubles as a content identity for
// the whole checkpoint (Checkpoint.CRC, the value /metrics exports). All
// integers are little-endian; payloads are native little-endian float64, so
// the zero-copy Open path requires a little-endian host (every other path,
// including Load, stays portable).
const magicV3 = "MSLC0003"

// sectionKindF64 is the only payload kind today: raw row-major float64
// weights. The field exists so pre-packed or quantized panel sections can
// join the same artifact without a format break.
const sectionKindF64 = 0

const sectionAlign = 64

// section is one parsed entry of the v3 section table.
type section struct {
	name   string
	kind   uint32
	shape  []int
	off    uint64
	length uint64
	crc    uint32
}

// Checkpoint is an opened v3 checkpoint: the verified section table plus the
// mapped (or, on non-unix hosts, read) file bytes. Bind serves tensors as
// zero-copy views into the mapping, so the Checkpoint must outlive every
// model bound to it; Close unmaps.
type Checkpoint struct {
	// Epoch is the training epoch recorded at save time (0 when unknown).
	Epoch uint64
	// CRC is the header CRC32 — a content identity covering the section
	// table and, through the per-section CRCs, every payload byte.
	CRC uint32
	// Path is the file the checkpoint was opened from.
	Path string

	sections []section
	data     []byte
	unmap    func() error

	mu     sync.Mutex
	closed bool
}

// ErrLegacyFormat reports that Open was pointed at a v1/v2 checkpoint, which
// has no mmap-able layout; callers fall back to Load.
var ErrLegacyFormat = fmt.Errorf("persist: checkpoint predates format v3 (use Load)")

// hostLittleEndian reports the CPU byte order; the zero-copy Open path reads
// float64 payloads in place and is only correct on little-endian hosts.
func hostLittleEndian() bool {
	var one uint16 = 1
	return *(*byte)(unsafe.Pointer(&one)) == 1
}

// Open maps a v3 checkpoint and verifies its header — O(1) in the payload
// bytes: no weight is read, parsed or copied (payload pages fault in lazily
// as inference first touches them). Use Verify for a full integrity sweep and
// Bind to serve a model over the mapping; v1/v2 files return ErrLegacyFormat.
func Open(path string) (*Checkpoint, error) {
	if err := faults.ErrOn(faults.DiskError); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if !hostLittleEndian() {
		return nil, fmt.Errorf("persist: %s: zero-copy open requires a little-endian host (use Load)", path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if fi.Size() < int64(len(magicV3)) {
		return nil, fmt.Errorf("persist: %s is not a model-slicing checkpoint", path)
	}
	data, unmap, err := mapFile(f, fi.Size())
	if err != nil {
		return nil, fmt.Errorf("persist: %s: %w", path, err)
	}
	ck, err := parseV3(data, path)
	if err != nil {
		_ = unmap()
		return nil, err
	}
	ck.unmap = unmap
	return ck, nil
}

// parseV3 validates the magic, header CRC and section-table bounds of a v3
// image and returns the Checkpoint view over it. It reads only the header
// bytes, never the payloads.
func parseV3(data []byte, path string) (*Checkpoint, error) {
	switch {
	case len(data) >= len(magicV3) && string(data[:len(magicV3)]) == magicV3:
	case len(data) >= len(magicV2) && (string(data[:len(magicV2)]) == magicV2 || string(data[:len(magicV2)]) == magicV1):
		return nil, ErrLegacyFormat
	default:
		return nil, fmt.Errorf("persist: %s is not a model-slicing checkpoint", path)
	}
	if len(data) < len(magicV3)+8 {
		return nil, fmt.Errorf("persist: %s: truncated header", path)
	}
	hdrLen := binary.LittleEndian.Uint64(data[len(magicV3):])
	hdrEnd := uint64(len(magicV3)) + 8 + hdrLen
	if hdrLen > uint64(len(data)) || hdrEnd+4 > uint64(len(data)) {
		return nil, fmt.Errorf("persist: %s: truncated header", path)
	}
	want := binary.LittleEndian.Uint32(data[hdrEnd:])
	got := crc32.ChecksumIEEE(data[:hdrEnd])
	if got != want {
		return nil, fmt.Errorf("persist: %s: header checksum mismatch (%08x != %08x): checkpoint is corrupt", path, got, want)
	}

	r := byteReader{b: data[len(magicV3)+8 : hdrEnd]}
	epoch, _ := r.uint64()
	count, err := r.uint32()
	if err != nil {
		return nil, fmt.Errorf("persist: %s: truncated header", path)
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("persist: %s: implausible section count %d", path, count)
	}
	ck := &Checkpoint{Epoch: epoch, CRC: want, Path: path, data: data}
	prevEnd := hdrEnd + 4
	for i := uint32(0); i < count; i++ {
		var s section
		if s.name, err = r.str(); err != nil {
			return nil, fmt.Errorf("persist: %s: section %d: %w", path, i, err)
		}
		kind, _ := r.uint32()
		rank, err := r.uint32()
		if err != nil || rank > 8 {
			return nil, fmt.Errorf("persist: %s: section %q: bad rank", path, s.name)
		}
		s.kind = kind
		s.shape = make([]int, rank)
		n := 1
		for j := range s.shape {
			d, err := r.uint32()
			if err != nil || d == 0 || d > 1<<28 {
				return nil, fmt.Errorf("persist: %s: section %q: bad shape", path, s.name)
			}
			s.shape[j] = int(d)
			n *= int(d)
		}
		s.off, _ = r.uint64()
		s.length, _ = r.uint64()
		if s.crc, err = r.uint32(); err != nil {
			return nil, fmt.Errorf("persist: %s: truncated section table", path)
		}
		if s.kind != sectionKindF64 {
			return nil, fmt.Errorf("persist: %s: section %q has unknown kind %d", path, s.name, s.kind)
		}
		if s.length != uint64(n)*8 {
			return nil, fmt.Errorf("persist: %s: section %q: length %d does not match shape %v", path, s.name, s.length, s.shape)
		}
		if s.off%sectionAlign != 0 || s.off < prevEnd || s.off+s.length > uint64(len(data)) {
			return nil, fmt.Errorf("persist: %s: section %q: bad offset/length (torn checkpoint?)", path, s.name)
		}
		prevEnd = s.off + s.length
		ck.sections = append(ck.sections, s)
	}
	if r.len() != 0 {
		return nil, fmt.Errorf("persist: %s: trailing bytes in section table", path)
	}
	if prevEnd != uint64(len(data)) {
		return nil, fmt.Errorf("persist: %s: file length %d does not match section table end %d", path, len(data), prevEnd)
	}
	return ck, nil
}

// Verify sweeps the full file: every inter-section padding byte must be zero
// and every payload must match its recorded CRC32. This is the O(n) integrity
// pass Open deliberately skips; run it when the artifact's provenance is in
// doubt (or at server startup, where it is still far cheaper than a
// parse-copy Load).
func (c *Checkpoint) Verify() error {
	cursor := c.headerEnd()
	for _, s := range c.sections {
		for _, b := range c.data[cursor:s.off] {
			if b != 0 {
				return fmt.Errorf("persist: %s: non-zero padding before section %q: checkpoint is corrupt", c.Path, s.name)
			}
		}
		if got := crc32.ChecksumIEEE(c.data[s.off : s.off+s.length]); got != s.crc {
			return fmt.Errorf("persist: %s: section %q checksum mismatch (%08x != %08x): checkpoint is corrupt",
				c.Path, s.name, got, s.crc)
		}
		cursor = s.off + s.length
	}
	return nil
}

// headerEnd returns the offset just past the header CRC.
func (c *Checkpoint) headerEnd() uint64 {
	if len(c.sections) == 0 {
		return uint64(len(c.data))
	}
	// Recompute from the layout rather than storing it: hdrLen is at a fixed
	// place.
	return uint64(len(magicV3)) + 8 + binary.LittleEndian.Uint64(c.data[len(magicV3):]) + 4
}

// Bind serves a model's parameters as zero-copy views into the mapped
// checkpoint: names and shapes must match in order (same contract as Load),
// each Param.Value is replaced by a tensor aliasing the mapping, and
// Param.Foreign is set so training paths know to copy-on-write first. No
// payload byte is read — binding a gigabyte model costs a few pointer writes.
// The Checkpoint must stay open for as long as the bound model serves.
func (c *Checkpoint) Bind(params []*nn.Param) error {
	if len(c.sections) != len(params) {
		return fmt.Errorf("persist: checkpoint has %d params, model has %d", len(c.sections), len(params))
	}
	for i, p := range params {
		s := c.sections[i]
		if s.name != p.Name {
			return fmt.Errorf("persist: param %d is %q in checkpoint but %q in model", i, s.name, p.Name)
		}
		if len(s.shape) != len(p.Value.Shape) {
			return fmt.Errorf("persist: param %q rank mismatch", s.name)
		}
		for j, d := range s.shape {
			if d != p.Value.Shape[j] {
				return fmt.Errorf("persist: param %q shape mismatch at dim %d: %d vs %d",
					s.name, j, d, p.Value.Shape[j])
			}
		}
	}
	// All structural checks passed; now flip the whole model atomically with
	// respect to errors (no half-bound model on a mismatch).
	for i, p := range params {
		s := c.sections[i]
		p.Value = tensor.FromBytes(c.data[s.off:s.off+s.length], s.shape...)
		p.Foreign = true
	}
	return nil
}

// Close releases the mapping. Any model still bound to it must not be used
// afterwards; swaps keep the old Checkpoint open until its last in-flight
// window settles (in practice, for the process lifetime — mappings are
// bounded by the number of swaps, not by traffic).
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.unmap == nil {
		c.closed = true
		return nil
	}
	c.closed = true
	return c.unmap()
}

// byteReader is a bounds-checked little-endian cursor over the header block.
type byteReader struct {
	b []byte
}

func (r *byteReader) len() int { return len(r.b) }

var errShortHeader = fmt.Errorf("truncated section table")

func (r *byteReader) uint32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, errShortHeader
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *byteReader) uint64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, errShortHeader
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

func (r *byteReader) str() (string, error) {
	n, err := r.uint32()
	if err != nil {
		return "", err
	}
	if n > 1<<20 || uint64(n) > uint64(len(r.b)) {
		return "", fmt.Errorf("implausible string length %d", n)
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

// encBuf is a reusable checkpoint image builder: the whole v3 file is encoded
// into one pooled byte slice and written with a single Write, so steady-state
// periodic saves allocate nothing proportional to the parameter count (the
// pool retains the grown buffer between epochs).
type encBuf struct {
	b []byte
}

var encPool = sync.Pool{New: func() any { return new(encBuf) }}

func (e *encBuf) u32(v uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
}

func (e *encBuf) u64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}

func (e *encBuf) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// padTo extends the buffer with zeros to the given absolute length.
func (e *encBuf) padTo(n int) {
	for len(e.b) < n {
		e.b = append(e.b, 0)
	}
}

// floats appends a float64 slice as raw little-endian payload without the
// full-slice scratch allocation binary.Write would make.
func (e *encBuf) floats(v []float64) {
	off := len(e.b)
	e.padTo(off + 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(e.b[off+8*i:], math.Float64bits(f))
	}
}

func align64(n int) int {
	return (n + sectionAlign - 1) &^ (sectionAlign - 1)
}

// encodeV3 builds the complete v3 file image for params into e.b.
func encodeV3(e *encBuf, params []*nn.Param, epoch uint64) {
	e.b = e.b[:0]
	e.b = append(e.b, magicV3...)
	hdrLenAt := len(e.b)
	e.u64(0) // hdrLen, patched below
	hdrStart := len(e.b)
	e.u64(epoch)
	e.u32(uint32(len(params)))

	// First pass: emit the section table with offsets laid out from a
	// provisional header end; the header size is exact after this pass, so
	// compute it up front instead.
	hdrSize := 8 + 4 // epoch + count
	for _, p := range params {
		hdrSize += 4 + len(p.Name) + 4 + 4 + 4*len(p.Value.Shape) + 8 + 8 + 4
	}
	payloadAt := align64(len(magicV3) + 8 + hdrSize + 4)
	crcAt := make([]int, len(params))
	for i, p := range params {
		e.str(p.Name)
		e.u32(sectionKindF64)
		e.u32(uint32(len(p.Value.Shape)))
		for _, d := range p.Value.Shape {
			e.u32(uint32(d))
		}
		e.u64(uint64(payloadAt))
		e.u64(uint64(8 * len(p.Value.Data)))
		crcAt[i] = len(e.b)
		e.u32(0) // payload CRC, patched below
		payloadAt = align64(payloadAt + 8*len(p.Value.Data))
	}
	binary.LittleEndian.PutUint64(e.b[hdrLenAt:], uint64(len(e.b)-hdrStart))
	hdrCRCAt := len(e.b)
	e.u32(0) // header CRC, patched below

	for i, p := range params {
		e.padTo(align64(len(e.b)))
		start := len(e.b)
		e.floats(p.Value.Data)
		binary.LittleEndian.PutUint32(e.b[crcAt[i]:], crc32.ChecksumIEEE(e.b[start:]))
	}
	binary.LittleEndian.PutUint32(e.b[hdrCRCAt:], crc32.ChecksumIEEE(e.b[:hdrCRCAt]))
}

// loadV3 is Load's parse-copy path for a v3 image: full verification (header
// CRC, padding, every section CRC) before a single float is copied into the
// model — the same no-garbage guarantee the v2 loader gives.
func loadV3(raw []byte, path string, params []*nn.Param) error {
	ck, err := parseV3(raw, path)
	if err != nil {
		return err
	}
	if err := ck.Verify(); err != nil {
		return err
	}
	if len(ck.sections) != len(params) {
		return fmt.Errorf("persist: checkpoint has %d params, model has %d", len(ck.sections), len(params))
	}
	for i, p := range params {
		s := ck.sections[i]
		if s.name != p.Name {
			return fmt.Errorf("persist: param %d is %q in checkpoint but %q in model", i, s.name, p.Name)
		}
		if len(s.shape) != len(p.Value.Shape) {
			return fmt.Errorf("persist: param %q rank mismatch", s.name)
		}
		for j, d := range s.shape {
			if d != p.Value.Shape[j] {
				return fmt.Errorf("persist: param %q shape mismatch at dim %d: %d vs %d",
					s.name, j, d, p.Value.Shape[j])
			}
		}
	}
	for i, p := range params {
		s := ck.sections[i]
		// A model bound over a read-only mapping must not be written through;
		// copy-on-write detaches it first.
		p.EnsureMutable()
		payload := raw[s.off : s.off+s.length]
		for j := range p.Value.Data {
			p.Value.Data[j] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*j:]))
		}
	}
	return nil
}
