//go:build race

package persist

const raceEnabled = true
