//go:build unix

package persist

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and shared, so every process serving
// the same checkpoint shares one copy of the pages in the OS page cache. The
// returned func unmaps.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
