package modelslicing_test

import (
	"math"
	"math/rand"
	"testing"

	ms "modelslicing"
	"modelslicing/internal/models"
)

// makeBlobs builds a small separable classification dataset on the facade
// types.
func makeBlobs(n, dim, classes int, rng *rand.Rand) []ms.Batch {
	var batches []ms.Batch
	bs := 16
	for start := 0; start < n; start += bs {
		x := ms.NewTensor(bs, dim)
		labels := make([]int, bs)
		for i := 0; i < bs; i++ {
			c := rng.Intn(classes)
			labels[i] = c
			for j := 0; j < dim; j++ {
				center := 0.0
				if j%classes == c {
					center = 2
				}
				x.Set(center+rng.NormFloat64()*0.6, i, j)
			}
		}
		batches = append(batches, ms.Batch{X: x, Labels: labels})
	}
	return batches
}

// TestFacadeEndToEnd drives the whole public API: build → train → evaluate
// at every rate → budget resolution → subnet extraction.
func TestFacadeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rates := ms.NewRateList(0.25, 4)
	model := models.NewMLP(12, []int{32, 32}, 3, 4, rng)
	tr := ms.NewTrainer(model, rates, ms.NewRMinMax(rates), ms.NewSGD(0.1, 0.9, 1e-4), rng)

	data := makeBlobs(480, 12, 3, rng)
	test := makeBlobs(160, 12, 3, rng)
	for epoch := 0; epoch < 12; epoch++ {
		tr.Epoch(data)
	}
	for _, r := range rates {
		res := ms.Evaluate(model, rates, r, test)
		if res.Accuracy < 0.9 {
			t.Fatalf("rate %v accuracy %.3f, want ≥0.9", r, res.Accuracy)
		}
	}

	// Equation 3: full cost vs quarter-budget resolution.
	full := ms.MeasureCost(model, []int{12}, 1)
	r := ms.BudgetRate(rates, float64(full.MACs)/4, float64(full.MACs))
	if r != 0.5 {
		t.Fatalf("quarter budget should resolve to rate 0.5, got %v", r)
	}
	half := ms.MeasureCost(model, []int{12}, 0.5)
	if half.MACs >= full.MACs {
		t.Fatal("sliced cost must shrink")
	}

	// Extraction: the deployable subnet computes the same function.
	sub := ms.Extract(model, 0.5, rates)
	x := test[0].X
	want := ms.Predict(model, rates, 0.5, x)
	got := sub.Forward(&ms.Context{}, x)
	for i := range want.Data {
		if math.Abs(want.Data[i]-got.Data[i]) > 1e-9 {
			t.Fatal("extracted subnet differs from sliced parent")
		}
	}
	subCost := ms.MeasureCost(sub, []int{12}, 1)
	if subCost.Params >= full.Params {
		t.Fatal("extracted subnet must be smaller")
	}
}

func TestFacadeSchedulers(t *testing.T) {
	rates := ms.NewRateList(0.25, 4)
	rng := rand.New(rand.NewSource(2))
	for _, s := range []ms.Scheduler{
		ms.NewRandomUniform(rates, 2),
		ms.NewRandomWeighted(rates, []float64{1, 1, 1, 1}, 2),
		ms.NewRMinMax(rates),
		ms.NewRMin(rates),
		ms.NewRMax(rates),
		ms.StaticSchedule(rates),
		ms.FixedSchedule(0.5),
	} {
		lt := s.Next(rng)
		if len(lt) == 0 {
			t.Fatalf("%s returned empty schedule", s.Name())
		}
		for _, r := range lt {
			if r <= 0 || r > 1 {
				t.Fatalf("%s returned invalid rate %v", s.Name(), r)
			}
		}
	}
}
