// Command msserver serves a trained model-slicing network over HTTP with
// the live Section 4.1 elastic-batching engine: queries POSTed to /predict
// batch up for T/2, each batch runs at the largest slice rate the Equation-3
// policy admits under calibrated per-rate timings, /metrics exposes the live
// counters in Prometheus format, and /healthz reports liveness.
//
// Serve a checkpoint written by mstrain (architecture flags must match):
//
//	mstrain -model mlp -epochs 20 -save mlp.ckpt
//	msserver -model mlp -load mlp.ckpt -addr :8080 -slo 50ms
//
// Or skip training entirely and serve a self-trained demo model:
//
//	msserver -model demo
//	curl -s localhost:8080/predict -d '{"input":[...16 floats...]}'
//
// Checkpoints in the current (v3) format are memory-mapped, not read: cold
// start is O(1) in model size, and pages fault in lazily as the first windows
// touch them. A model served from a checkpoint can be replaced without
// dropping a query — retrain (or re-save) into the same path, then either
// signal the process or hit the admin endpoint:
//
//	kill -HUP $(pidof msserver)
//	curl -X POST localhost:8080/admin/swap
//
// In-flight windows finish on the old weights, new windows serve the new
// ones, and the calibrator re-learns t(r) over a short ramp.
//
// With -coordinator the process serves no model at all: it fronts a fleet of
// replicas (each a plain msserver), routing every query to the replica whose
// backlog admits it at the highest slice rate, health-checking members, and
// retrying or hedging around failures:
//
//	msserver -model demo -addr :8081 &
//	msserver -model demo -addr :8082 &
//	msserver -coordinator -replicas http://localhost:8081,http://localhost:8082 -addr :8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"modelslicing/internal/data"
	"modelslicing/internal/demo"
	"modelslicing/internal/faults"
	"modelslicing/internal/fleet"
	"modelslicing/internal/models"
	"modelslicing/internal/nn"
	"modelslicing/internal/persist"
	"modelslicing/internal/server"
	"modelslicing/internal/slicing"
)

func main() {
	model := flag.String("model", "demo", "demo|mlp|vgg|resnet (mlp/vgg/resnet require -load)")
	loadPath := flag.String("load", "", "checkpoint written by mstrain with matching architecture flags")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	slo := flag.Duration("slo", 50*time.Millisecond, "latency SLO T; batches form every T/2")
	lb := flag.Float64("lb", 0.25, "slice-rate lower bound")
	gran := flag.Int("granularity", 4, "slice granularity")
	workers := flag.Int("workers", 0, "batch shards (0 = min(4, GOMAXPROCS))")
	queueFactor := flag.Float64("queue-factor", 1, "admission bound as a multiple of the lower-bound window capacity")
	fixedRate := flag.Float64("fixed-rate", 0, "pin serving to one rate (fixed-width baseline; 0 = elastic)")
	tier := flag.String("tier", "", "GEMM engine tier: exact|fma|f32 (empty = MS_ENGINE_TIER, default exact)")
	traceSample := flag.Int("trace-sample", 16, "sample every k-th query's span into /debug/trace (negative disables the ring)")
	dropExpired := flag.Bool("drop-expired", false, "answer queries whose SLO already expired with an error instead of computing them late")
	verify := flag.Bool("verify", true, "CRC-sweep mapped checkpoints before serving them (disable for the pure O(1) cold start)")
	seed := flag.Int64("seed", 1, "random seed")
	coordinator := flag.Bool("coordinator", false, "front a fleet of replicas instead of serving a model (see -replicas)")
	replicaList := flag.String("replicas", "", "comma-separated replica base URLs for -coordinator (more can join at runtime via POST /replicas)")
	flag.Parse()

	if *coordinator {
		runCoordinator(*addr, *slo, *replicaList)
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	rates := slicing.NewRateList(*lb, *gran)

	var (
		net        nn.Layer
		inputShape []int
		accuracyAt func(r float64) float64
		info       server.ModelInfo
		swapSource func() (*slicing.Shared, server.ModelInfo, error)
	)
	switch *model {
	case "demo":
		fmt.Println("training demo MLP...")
		m := demo.TrainMLP(*lb, *gran, 30, rng)
		net, inputShape, accuracyAt = m.Net, m.InputShape, m.AccuracyAt
		for _, r := range rates {
			fmt.Printf("  rate %.4g  acc %.2f%%\n", r, 100*m.Accuracy[r])
		}
	case "mlp", "vgg", "resnet":
		if *loadPath == "" {
			fmt.Fprintf(os.Stderr, "msserver: -model %s requires -load (train one with mstrain -save)\n", *model)
			os.Exit(2)
		}
		net, inputShape = buildNet(*model, *gran, len(rates), rng)
		var err error
		info, err = loadCheckpoint(*loadPath, net.Params(), *verify)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if info.CRC != 0 || info.Epoch != 0 {
			fmt.Printf("mapped checkpoint %s (epoch %d, crc %08x)\n", *loadPath, info.Epoch, info.CRC)
		} else {
			fmt.Printf("loaded legacy checkpoint %s\n", *loadPath)
		}
		// SwapSource rebuilds the architecture from scratch and re-binds the
		// checkpoint path — what SIGHUP and POST /admin/swap promote after the
		// path has been overwritten by a newer save.
		modelName, gran, nRates, path, doVerify := *model, *gran, len(rates), *loadPath, *verify
		swapSource = func() (*slicing.Shared, server.ModelInfo, error) {
			fresh, _ := buildNet(modelName, gran, nRates, rand.New(rand.NewSource(1)))
			ninfo, err := loadCheckpoint(path, fresh.Params(), doVerify)
			if err != nil {
				return nil, server.ModelInfo{}, err
			}
			return slicing.NewShared(fresh, rates), ninfo, nil
		}
	default:
		fmt.Fprintf(os.Stderr, "msserver: unknown model %q\n", *model)
		os.Exit(2)
	}

	srv, err := server.New(server.Config{
		Model:            net,
		Rates:            rates,
		InputShape:       inputShape,
		SLO:              *slo,
		Workers:          *workers,
		QueueFactor:      *queueFactor,
		FixedRate:        *fixedRate,
		Tier:             *tier,
		AccuracyAt:       accuracyAt,
		TraceSampleEvery: *traceSample,
		DropExpired:      *dropExpired,
		ModelInfo:        info,
		SwapSource:       swapSource,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("calibrated per-sample times:\n")
	times := srv.Calibrator().Snapshot()
	for _, r := range rates {
		if t, ok := times[r]; ok {
			fmt.Printf("  rate %.4g  t=%s  window capacity %d\n",
				r, time.Duration(t*float64(time.Second)), int((*slo).Seconds()/2/t))
		}
	}

	// The engine's API plus the Go runtime profiler: srv.Handler owns the
	// serving endpoints (/predict, /metrics, /debug/decisions, /debug/trace),
	// and net/http/pprof mounts beside them so a live CPU or heap profile is
	// one curl away — on the same port the engine counters already live on.
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// Slow-client armor: a peer that trickles headers or never reads its
	// response must not pin a connection (and its goroutine) forever. The
	// write timeout dominates the SLO by a wide margin, so no legitimate
	// /predict round-trip is cut off.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      max(60*time.Second, 10*(*slo)),
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\nshutting down...")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx) // stop intake, drain in-flight HTTP
		srv.Stop()                // flush the last window
		close(done)
	}()
	// SIGHUP is the operator's "reload the checkpoint" signal: rebuild the
	// model from the (presumably re-saved) path and hot-swap it in without
	// dropping a query. Demo models have no checkpoint to reload.
	go func() {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		for range hup {
			if swapSource == nil {
				fmt.Println("SIGHUP: serving an in-process model (no checkpoint); nothing to reload")
				continue
			}
			ns, ninfo, err := swapSource()
			if err != nil {
				fmt.Fprintf(os.Stderr, "msserver: SIGHUP reload: %v\n", err)
				continue
			}
			if err := srv.Swap(ns, ninfo); err != nil {
				fmt.Fprintf(os.Stderr, "msserver: SIGHUP swap: %v\n", err)
				continue
			}
			fmt.Printf("SIGHUP: swapped to checkpoint epoch %d (crc %08x)\n", ninfo.Epoch, ninfo.CRC)
		}
	}()

	fmt.Printf("serving %s on %s (SLO %s, window %s, engine tier %s)\n", *model, *addr, *slo, *slo/2, srv.Stats().EngineTier)
	if armed := faults.Summary(); armed != "" {
		fmt.Printf("WARNING: fault injection armed via MS_FAULTS: %s\n", armed)
	}
	fmt.Printf("observability: /metrics (Prometheus), /debug/decisions (flight recorder), /debug/trace (Chrome trace, 1-in-%d queries), /debug/pprof/\n",
		*traceSample)
	if swapSource != nil {
		fmt.Println("model ops: kill -HUP or POST /admin/swap reloads the checkpoint without dropping a query")
	}
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-done
}

// buildNet constructs the serving architecture for -model mlp/vgg/resnet, so
// the initial load and every SwapSource rebuild agree on shapes. (The rng
// only seeds initial weights, which the checkpoint immediately replaces.)
func buildNet(model string, gran, nRates int, rng *rand.Rand) (nn.Layer, []int) {
	cfg := data.CIFARLike(0, 0)
	switch model {
	case "mlp":
		return models.NewMLP(cfg.Channels*cfg.H*cfg.W, []int{64, 64}, cfg.Classes, gran, rng),
			[]int{cfg.Channels * cfg.H * cfg.W}
	case "vgg":
		net, _ := models.NewVGG(models.VGG13Mini(gran, models.NormGroup, nRates), rng)
		return net, []int{cfg.Channels, cfg.H, cfg.W}
	default: // resnet
		net, _ := models.NewResNet(models.ResNetMini(gran, models.NormGroup, nRates), rng)
		return net, []int{cfg.Channels, cfg.H, cfg.W}
	}
}

// loadCheckpoint binds params to the checkpoint at path. Current-format (v3)
// checkpoints are memory-mapped and bound in place — O(1) cold start, with an
// optional full CRC sweep first — and the mapping stays live for as long as
// the process serves those tensors. Legacy v1/v2 checkpoints fall back to the
// copying loader (no identity: their headers carry no epoch and the trailer
// CRC is not comparable).
func loadCheckpoint(path string, params []*nn.Param, verify bool) (server.ModelInfo, error) {
	ckpt, err := persist.Open(path)
	if errors.Is(err, persist.ErrLegacyFormat) {
		if err := persist.Load(path, params); err != nil {
			return server.ModelInfo{}, err
		}
		return server.ModelInfo{Path: path}, nil
	}
	if err != nil {
		return server.ModelInfo{}, err
	}
	if verify {
		if err := ckpt.Verify(); err != nil {
			ckpt.Close()
			return server.ModelInfo{}, err
		}
	}
	if err := ckpt.Bind(params); err != nil {
		ckpt.Close()
		return server.ModelInfo{}, err
	}
	return server.ModelInfo{Epoch: ckpt.Epoch, CRC: ckpt.CRC, Path: path}, nil
}

// runCoordinator serves the fleet front end: no model, no engine — just the
// slice-aware router over the given replicas. Replicas that cannot be reached
// at startup are skipped with a warning (they can join later via
// POST /replicas once they come up); at least one must join.
func runCoordinator(addr string, slo time.Duration, replicaList string) {
	coord, err := fleet.New(fleet.Config{SLO: slo})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	joined := 0
	for _, u := range strings.Split(replicaList, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		if err := coord.AddReplica(u); err != nil {
			fmt.Fprintf(os.Stderr, "msserver: replica %s did not join: %v\n", u, err)
			continue
		}
		fmt.Printf("replica joined: %s\n", u)
		joined++
	}
	if joined == 0 {
		fmt.Fprintln(os.Stderr, "msserver: -coordinator needs at least one reachable replica (-replicas http://host:port,...)")
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      max(60*time.Second, 10*slo),
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\nshutting down...")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		coord.Stop()
		close(done)
	}()

	fmt.Printf("coordinating %d replicas on %s (SLO %s)\n", joined, addr, slo)
	if armed := faults.Summary(); armed != "" {
		fmt.Printf("WARNING: fault injection armed via MS_FAULTS: %s\n", armed)
	}
	fmt.Println("endpoints: /predict (fleet-routed), /metrics, /healthz, /replicas (GET status, POST join/leave), /admin/swap (rolling fleet-wide model swap)")
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-done
}
