// Command mstrain trains a model with model slicing on the synthetic
// CIFAR-like task (or the Markov corpus for -model nnlm), evaluates every
// subnet, and optionally saves/loads binary checkpoints.
//
// Usage:
//
//	mstrain -model vgg -epochs 20 -lb 0.25 -granularity 4 -save vgg.ckpt
//	mstrain -model vgg -load vgg.ckpt        # evaluate only
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"modelslicing/internal/data"
	"modelslicing/internal/models"
	"modelslicing/internal/nn"
	"modelslicing/internal/persist"
	"modelslicing/internal/slicing"
	"modelslicing/internal/train"
)

func main() {
	model := flag.String("model", "vgg", "vgg|resnet|mlp|nnlm")
	epochs := flag.Int("epochs", 20, "training epochs (0 with -load to evaluate only)")
	lb := flag.Float64("lb", 0.25, "slice-rate lower bound")
	gran := flag.Int("granularity", 4, "slice granularity (rates in steps of 1/g)")
	lr := flag.Float64("lr", 0.03, "learning rate")
	seed := flag.Int64("seed", 1, "random seed")
	trainN := flag.Int("train", 800, "training samples (or tokens×25 for nnlm)")
	savePath := flag.String("save", "", "write checkpoint after training")
	saveEvery := flag.Int("save-every", 0, "also checkpoint to -save every N epochs (a serving msserver picks each one up via SIGHUP or /admin/swap)")
	loadPath := flag.String("load", "", "read checkpoint before training/eval")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	rates := slicing.NewRateList(*lb, *gran)

	var (
		net     nn.Layer
		batches func() []train.Batch
		test    []train.Batch
		clip    float64
	)
	switch *model {
	case "vgg", "resnet", "mlp":
		cfg := data.CIFARLike(*trainN, *trainN/2)
		cfg.Noise, cfg.SharedWeight = 0.4, 0.35
		d := data.GenerateImages(cfg)
		switch *model {
		case "vgg":
			net, _ = models.NewVGG(models.VGG13Mini(*gran, models.NormGroup, len(rates)), rng)
		case "resnet":
			net, _ = models.NewResNet(models.ResNetMini(*gran, models.NormGroup, len(rates)), rng)
		default:
			net = models.NewMLP(cfg.Channels*cfg.H*cfg.W, []int{64, 64}, cfg.Classes, *gran, rng)
		}
		flatten := *model == "mlp"
		batches = func() []train.Batch { return imageBatches(d, flatten, rng, true) }
		test = imageBatches(d, flatten, rng, false)
	case "nnlm":
		txt := data.GenerateText(data.PTBLike(*trainN*25, *trainN*5))
		net = models.NewNNLM(models.NNLMMini(txt.Cfg.Vocab, *gran), rng)
		lm := data.LMBatches(txt.Train, 16, 16)
		batches = func() []train.Batch { return lm }
		test = data.LMBatches(txt.Test, 16, 16)
		clip = 5
	default:
		fmt.Fprintf(os.Stderr, "mstrain: unknown model %q\n", *model)
		os.Exit(2)
	}

	if *loadPath != "" {
		if err := persist.Load(*loadPath, net.Params()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loaded checkpoint %s\n", *loadPath)
	}

	if *epochs > 0 {
		opt := train.NewSGD(*lr, 0.9, 1e-4)
		sched := train.NewStepDecay(*lr, 10, train.MilestonesAt(*epochs, 0.6, 0.85)...)
		tr := slicing.NewTrainer(net, rates, slicing.NewRMinMax(rates), opt, rng)
		tr.ClipNorm = clip
		start := time.Now()
		for e := 0; e < *epochs; e++ {
			opt.LR = sched.LR(e)
			loss := tr.Epoch(batches())
			fmt.Printf("epoch %2d  lr %.4f  loss %.4f\n", e, opt.LR, loss)
			if *saveEvery > 0 && *savePath != "" && (e+1)%*saveEvery == 0 && e+1 < *epochs {
				// The save is atomic (temp file + rename), so a serving
				// process can swap to the path at any moment mid-run.
				if err := persist.SaveEpoch(*savePath, net.Params(), uint64(e+1)); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("checkpointed epoch %d to %s\n", e+1, *savePath)
			}
		}
		fmt.Printf("trained %d epochs in %.1fs\n", *epochs, time.Since(start).Seconds())
	}

	fmt.Println("subnet evaluation:")
	for i, r := range rates {
		res := train.Evaluate(net, r, i, test)
		if *model == "nnlm" {
			fmt.Printf("  r=%.4g  ppl %.2f\n", r, res.Perplexity())
		} else {
			fmt.Printf("  r=%.4g  acc %.2f%%\n", r, 100*res.Accuracy)
		}
	}

	if *savePath != "" {
		if err := persist.SaveEpoch(*savePath, net.Params(), uint64(*epochs)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved checkpoint %s\n", *savePath)
	}
}

// imageBatches adapts the image dataset, flattening inputs for MLPs.
func imageBatches(d *data.Images, flatten bool, rng *rand.Rand, trainSet bool) []train.Batch {
	var bs []train.Batch
	if trainSet {
		bs = d.TrainBatches(32, false, rng)
	} else {
		bs = d.TestBatches(64)
	}
	if !flatten {
		return bs
	}
	out := make([]train.Batch, len(bs))
	for i, b := range bs {
		out[i] = train.Batch{
			X:      b.X.Reshape(b.X.Dim(0), b.X.Size()/b.X.Dim(0)),
			Labels: b.Labels,
		}
	}
	return out
}
