// Command msserve demonstrates the Section 4.1 dynamic-workload serving
// scheme: queries arrive under a latency SLO T, batches form every T/2, and
// the slice rate is chosen per batch from Equation 3 so that every query is
// served in time. It prints the per-rate workload distribution and compares
// against fixed-capacity provisioning.
//
// By default the run is the paper's clock-free simulation. With -live the
// same diurnal trace drives the real concurrent engine in internal/server —
// wall-clock windows, calibrated per-rate timings, admission control — and
// the elastic policy is compared against fixed-width provisioning measured
// on actual hardware.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"modelslicing/internal/demo"
	"modelslicing/internal/fleet"
	"modelslicing/internal/models"
	"modelslicing/internal/server"
	"modelslicing/internal/serving"
	"modelslicing/internal/slicing"
)

func main() {
	windows := flag.Int("windows", 480, "number of T/2 scheduling windows")
	base := flag.Float64("base", 40, "off-peak mean arrivals per window (simulation)")
	peak := flag.Float64("peak", 12, "peak-to-trough workload ratio")
	burst := flag.Float64("burst", 0.03, "probability of a burst window")
	slo := flag.Float64("slo", 100, "latency SLO T (simulation time units)")
	sample := flag.Float64("sample-time", 1, "full-model per-sample time t (simulation)")
	lb := flag.Float64("lb", 0.25, "slice-rate lower bound")
	gran := flag.Int("granularity", 4, "slice granularity")
	seed := flag.Int64("seed", 1, "random seed")
	live := flag.Bool("live", false, "drive the real concurrent server instead of the simulation")
	liveSLO := flag.Duration("live-slo", 20*time.Millisecond, "latency SLO T for -live")
	liveWindows := flag.Int("live-windows", 120, "scheduling windows per arm for -live")
	fleetN := flag.Int("fleet", 0, "route the trace through a coordinator over N in-process replicas (0 = single node)")
	flag.Parse()

	if *live {
		runLive(*liveSLO, *liveWindows, *peak, *burst, *lb, *gran, *seed)
		return
	}
	if *fleetN > 0 {
		runFleet(*fleetN, *windows, *base, *peak, *burst, *slo, *sample, *lb, *gran, *seed)
		return
	}

	cfg := serving.Config{
		LatencySLO:     *slo,
		FullSampleTime: *sample,
		Rates:          slicing.NewRateList(*lb, *gran),
		// Accuracy profile shaped like the paper's Table 4 slicing rows.
		AccuracyAt: func(r float64) float64 { return 0.916 + 0.027*r },
	}
	rng := rand.New(rand.NewSource(*seed))
	arrivals := serving.DiurnalWorkload(*windows, *base, *peak, *burst, 1.5, rng)

	elastic := serving.Simulate(cfg, arrivals)
	fmt.Printf("workload: %d windows, peak %d / trough %d arrivals (%.1fx volatility)\n",
		*windows, elastic.PeakArrivals, elastic.TroughArrivals, elastic.Volatility())
	fmt.Printf("\nmodel slicing (elastic, Equation 3):\n")
	report(elastic)

	for _, r := range []float64{1.0, cfg.Rates.Min()} {
		fixed := serving.FixedCapacityBaseline(cfg, r, arrivals)
		fmt.Printf("\nfixed width %.4g:\n", r)
		report(fixed)
	}
}

func report(s serving.Stats) {
	if s.Processed == 0 {
		fmt.Println("  no queries arrived")
		return
	}
	fmt.Printf("  processed %d queries, SLO violations %d (%.2f%%), backlog-degraded windows %d\n",
		s.Processed, s.SLOViolations, 100*float64(s.SLOViolations)/float64(s.Processed),
		s.DegradedWindows)
	fmt.Printf("  utilization %.1f%%, mean slice rate %.3f, delivered accuracy %.2f%%\n",
		100*s.Utilization, s.MeanRate, 100*s.WeightedAccuracy)
	var rates []float64
	for r := range s.RateHist {
		rates = append(rates, r)
	}
	sort.Float64s(rates)
	for _, r := range rates {
		n := s.RateHist[r]
		fmt.Printf("  rate %.4g served %6d queries (%.1f%%)\n",
			r, n, 100*float64(n)/float64(s.Processed))
	}
}

// runLive measures the elastic policy against fixed-width provisioning on
// the real engine: one trained model, one diurnal trace, three servers.
func runLive(slo time.Duration, windows int, peakRatio, burstProb, lb float64, gran int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("training demo MLP...")
	m := demo.TrainMLP(lb, gran, 30, rng)
	for _, r := range m.Rates {
		fmt.Printf("  rate %.4g  acc %.2f%%\n", r, 100*m.Accuracy[r])
	}

	// Calibrate once (on a throwaway elastic server) to size the workload
	// from this machine's actual capacities, exactly as an operator would.
	probe := mustServer(m, slo, 0)
	times := probe.Calibrator().Snapshot()
	probe.Stop()
	window := (slo / 2).Seconds() * liveHeadroom
	capFull := window / times[1.0]
	capMin := window / times[m.Rates.Min()]
	fmt.Printf("\ncalibration: t(1.0)=%s t(%.4g)=%s → window capacity %d full / %d base\n",
		time.Duration(times[1.0]*float64(time.Second)), m.Rates.Min(),
		time.Duration(times[m.Rates.Min()]*float64(time.Second)), int(capFull), int(capMin))

	// Size the trace so the peak clearly exceeds full-width capacity (the
	// fixed-full arm must drown) while staying well inside the lower
	// bound's (the elastic arm must cope, with slack for intake overhead —
	// driver and server share this machine).
	peakArrivals := math.Min(2.5*capFull, 0.6*capMin)
	baseArrivals := math.Max(peakArrivals/peakRatio, 1)
	arrivals := serving.DiurnalWorkload(windows, baseArrivals, peakArrivals/baseArrivals,
		burstProb, 1.2, rand.New(rand.NewSource(seed+1)))

	type arm struct {
		name      string
		fixedRate float64
	}
	arms := []arm{
		{"model slicing (elastic)", 0},
		{"fixed full width", 1.0},
		{"fixed base width", m.Rates.Min()},
	}
	fmt.Printf("\ndriving %d windows of %s against each arm (live traffic)...\n", windows, slo/2)
	results := make([]server.Stats, len(arms))
	for i, a := range arms {
		srv := mustServer(m, slo, a.fixedRate)
		results[i] = drive(srv, m, arrivals, slo/2, rand.New(rand.NewSource(seed+2)))
	}

	fmt.Printf("\n%-24s %10s %10s %10s %12s %10s %10s\n",
		"policy", "processed", "rejected", "SLO miss", "utilization", "mean rate", "accuracy")
	for i, a := range arms {
		s := results[i]
		fmt.Printf("%-24s %10d %10d %10d %11.1f%% %10.3f %9.2f%%\n",
			a.name, s.Processed, s.Rejected, s.SLOMisses+s.Rejected,
			100*s.Utilization, s.MeanRate, 100*s.WeightedAccuracy)
	}

	// The backlog-aware dispatcher's own counters: how deep the window
	// queue ever got, and how often the deadline budget — not batch size —
	// pushed a batch to a lower rate or past feasibility.
	fmt.Println("\nbacklog scheduler (per arm): peak windows in flight / degraded / infeasible batches")
	for i, a := range arms {
		s := results[i]
		fmt.Printf("  %-24s %4d / %4d / %4d\n",
			a.name, s.PeakBacklogWindows, s.DegradedBatches, s.InfeasibleBatches)
	}

	// End-to-end latency tails from the tracer histograms: the elastic arm's
	// case is precisely that its *tail* stays inside T while fixed-full drowns
	// at the peak — means hide that.
	fmt.Printf("\nlatency per arm (SLO %s): %10s %10s %10s %10s\n", slo, "p50", "p95", "p99", "mean")
	for i, a := range arms {
		l := results[i].Latency
		fmt.Printf("  %-24s %10s %10s %10s %10s\n",
			a.name, l.Quantile(0.50), l.Quantile(0.95), l.Quantile(0.99), l.Mean())
	}
	fmt.Println("\nelastic arm stage breakdown (p95): where the window's time went")
	for _, sl := range results[0].StageLatency {
		fmt.Printf("  %-10s %10s\n", sl.Stage, sl.Hist.Quantile(0.95))
	}

	elastic := results[0]
	fmt.Println("\nper-rate traffic under the elastic policy (live):")
	var rates []float64
	for r := range elastic.RateHist {
		rates = append(rates, r)
	}
	sort.Float64s(rates)
	for _, r := range rates {
		n := elastic.RateHist[r]
		fmt.Printf("  rate %.4g served %6d queries (%.1f%%)\n",
			r, n, 100*float64(n)/float64(elastic.Processed))
	}

	// The same trace through the clock-free simulation, with the policy fed
	// the calibrated curve: live and simulated behaviour should agree
	// qualitatively (both paths schedule through serving.Policy).
	simCfg := serving.Config{
		LatencySLO:     slo.Seconds(),
		FullSampleTime: times[1.0],
		Rates:          m.Rates,
		CostRatio:      func(r float64) float64 { return times[m.Rates.Nearest(r)] / times[1.0] },
		AccuracyAt:     m.AccuracyAt,
	}
	sim := serving.Simulate(simCfg, arrivals)
	fmt.Printf("\nsimulation on the same trace and calibrated curve: violations %d (%.2f%%), degraded windows %d, mean rate %.3f, accuracy %.2f%%\n",
		sim.SLOViolations, 100*float64(sim.SLOViolations)/float64(max(sim.Processed, 1)),
		sim.DegradedWindows, sim.MeanRate, 100*sim.WeightedAccuracy)
}

// runFleet replays the diurnal trace through the scale-out path twice: once
// through the clock-free fleet simulation (serving.SimulateFleet) and once
// through a live fleet.Coordinator routing real HTTP queries over N
// in-process replicas on fake clocks — the cluster-level analogue of the
// single-node lockstep tests. One abstract time unit maps to one second on
// the fake clocks, so both runs execute numerically identical Equation-3
// arithmetic and should agree exactly.
func runFleet(n, windows int, base, peak, burst, sloU, sample, lb float64, gran int, seed int64) {
	rates := slicing.NewRateList(lb, gran)
	cfg := serving.Config{
		LatencySLO:     sloU,
		FullSampleTime: sample,
		Rates:          rates,
		AccuracyAt:     func(r float64) float64 { return 0.916 + 0.027*r },
	}
	rng := rand.New(rand.NewSource(seed))
	arrivals := serving.DiurnalWorkload(windows, base, peak, burst, 1.5, rng)

	sim := serving.SimulateFleet(cfg, n, arrivals)
	fmt.Printf("workload: %d windows over %d replicas, %d queries\n", windows, n, sim.Processed)
	fmt.Printf("\nfleet simulation (greedy Equation-3 routing):\n")
	fmt.Printf("  processed %d queries, SLO violations %d (%.2f%%), infeasible windows %d, backlog-degraded windows %d\n",
		sim.Processed, sim.SLOViolations,
		100*float64(sim.SLOViolations)/float64(max(sim.Processed, 1)),
		sim.InfeasibleWindows, sim.DegradedWindows)
	fmt.Printf("  mean slice rate %.3f\n", sim.MeanRate)
	for i, q := range sim.PerReplica {
		fmt.Printf("  replica %d routed %6d queries (%.1f%%)\n",
			i, q, 100*float64(q)/float64(max(sim.Processed, 1)))
	}

	fmt.Printf("\ndriving the same trace through a live coordinator over %d in-process replicas (fake clocks)...\n", n)
	sloDur := time.Duration(sloU * float64(time.Second))
	window := sloDur / 2
	start := time.Unix(0, 0)
	replicas := make([]*server.Server, n)
	clocks := make([]*server.FakeClock, n)
	urls := make([]string, n)
	for i := range replicas {
		clocks[i] = server.NewFakeClock(start)
		srv, err := server.New(server.Config{
			Model:      models.NewMLP(4, []int{8, 8}, 3, gran, rand.New(rand.NewSource(1))),
			Rates:      rates,
			InputShape: []int{4},
			SLO:        sloDur,
			Workers:    2,
			Clock:      clocks[i],
			SampleTime: func(r float64) float64 { return sample * r * r },
			// Admission stays wide open: the coordinator's routing is the
			// only throttle, exactly as in the simulation.
			QueueFactor:       1e9,
			MaxBacklogWindows: 1 << 30,
		})
		if err != nil {
			panic(err)
		}
		defer srv.Stop()
		replicas[i] = srv
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		urls[i] = ts.URL
	}
	cclk := server.NewFakeClock(start)
	coord, err := fleet.New(fleet.Config{
		SLO:        sloDur,
		Clock:      cclk,
		HedgeAfter: -1, // wall-time hedging has no place on a frozen clock
		RetryBase:  -1,
	})
	if err != nil {
		panic(err)
	}
	defer coord.Stop()
	for _, u := range urls {
		if err := coord.AddReplica(u); err != nil {
			panic(err)
		}
	}

	inRng := rand.New(rand.NewSource(seed + 2))
	liveHist := make(map[float64]int)
	var errs, routeMismatches int
	for k, nq := range arrivals {
		routedBefore := fleetRouted(coord)
		results := make(chan float64, nq)
		var booked atomic.Int64
		for j := 0; j < nq; j++ {
			in := []float64{inRng.NormFloat64(), inRng.NormFloat64(), inRng.NormFloat64(), inRng.NormFloat64()}
			go func() {
				resp, err := coord.Predict(context.Background(), in)
				if err != nil {
					booked.Add(1)
					results <- -1
					return
				}
				results <- resp.Rate
			}()
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			depth := int(booked.Load())
			for _, r := range replicas {
				depth += r.QueueDepth()
			}
			if depth == nq {
				break
			}
			if time.Now().After(deadline) {
				fmt.Fprintln(os.Stderr, "msserve: fleet window stalled; submissions never landed")
				os.Exit(1)
			}
			time.Sleep(time.Millisecond)
		}
		routedNow := fleetRouted(coord)
		for i := range routedNow {
			if int(routedNow[i]-routedBefore[i]) != sim.Ticks[k].Routed[i] {
				routeMismatches++
				break
			}
		}
		cclk.Advance(window)
		for i := range clocks {
			clocks[i].Tick(window)
		}
		for i := range replicas {
			for replicas[i].Stats().Windows != int64(k+1) {
				time.Sleep(time.Millisecond)
			}
		}
		for j := 0; j < nq; j++ {
			r := <-results
			if r < 0 {
				errs++
				continue
			}
			liveHist[r]++
		}
	}

	st := coord.Stats()
	fmt.Printf("\nlive fleet: forwarded %d, errors %d, retries %d, hedges %d, shed %d\n",
		st.Forwarded, errs, st.Retries, st.Hedges, st.Shed)
	fmt.Println("per-rate traffic through the live coordinator:")
	var sortedRates []float64
	for r := range liveHist {
		sortedRates = append(sortedRates, r)
	}
	sort.Float64s(sortedRates)
	for _, r := range sortedRates {
		fmt.Printf("  rate %.4g served %6d queries (%.1f%%)\n",
			r, liveHist[r], 100*float64(liveHist[r])/float64(max(int(st.Forwarded), 1)))
	}
	histMatch := len(liveHist) == len(sim.RateHist)
	for r, c := range sim.RateHist {
		if liveHist[r] != c {
			histMatch = false
		}
	}
	fmt.Printf("\nlockstep with the fleet simulation: rate histogram match %v, per-window routing mismatches %d/%d\n",
		histMatch, routeMismatches, windows)
	if !histMatch || routeMismatches > 0 || errs > 0 {
		os.Exit(1)
	}
}

func fleetRouted(c *fleet.Coordinator) []int64 {
	rs := c.Replicas()
	out := make([]int64, len(rs))
	for i, r := range rs {
		out[i] = r.Routed
	}
	return out
}

// liveHeadroom derates the policy window in live mode: the load generator
// shares the machine with the workers, so the policy must not plan to spend
// the whole window on inference.
const liveHeadroom = 0.7

// mustServer builds one live arm over the shared demo model.
func mustServer(m *demo.Model, slo time.Duration, fixedRate float64) *server.Server {
	srv, err := server.New(server.Config{
		Model:      m.Net,
		Rates:      m.Rates,
		InputShape: m.InputShape,
		SLO:        slo,
		FixedRate:  fixedRate,
		Headroom:   liveHeadroom,
		AccuracyAt: m.AccuracyAt,
	})
	if err != nil {
		panic(err)
	}
	return srv
}

// drive replays the arrival trace against a live server in real time: each
// window's queries are submitted at its open, then the driver sleeps to the
// next boundary. Results drain through the buffered per-query channels; the
// server's own counters are the measurement.
func drive(srv *server.Server, m *demo.Model, arrivals []int, window time.Duration, rng *rand.Rand) server.Stats {
	ticker := time.NewTicker(window)
	defer ticker.Stop()
	for _, n := range arrivals {
		for j := 0; j < n; j++ {
			// Pooled test inputs: submission stays cheap enough that the
			// generator keeps pace with the trace it is replaying.
			_, _ = srv.Submit(m.Sample(rng)) // rejections are part of the measurement
		}
		<-ticker.C
	}
	// Let the last windows flush before freezing the counters.
	time.Sleep(2 * window)
	srv.Stop()
	return srv.Stats()
}
