// Command msserve simulates the Section 4.1 dynamic-workload serving scheme:
// queries arrive under a latency SLO T, batches form every T/2, and the
// slice rate is chosen per batch from Equation 3 so that every query is
// served in time. It prints the per-rate workload distribution and compares
// against fixed-capacity provisioning.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"sort"

	"modelslicing/internal/serving"
	"modelslicing/internal/slicing"
)

func main() {
	windows := flag.Int("windows", 480, "number of T/2 scheduling windows")
	base := flag.Float64("base", 40, "off-peak mean arrivals per window")
	peak := flag.Float64("peak", 12, "peak-to-trough workload ratio")
	burst := flag.Float64("burst", 0.03, "probability of a burst window")
	slo := flag.Float64("slo", 100, "latency SLO T (time units)")
	sample := flag.Float64("sample-time", 1, "full-model per-sample time t")
	lb := flag.Float64("lb", 0.25, "slice-rate lower bound")
	gran := flag.Int("granularity", 4, "slice granularity")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := serving.Config{
		LatencySLO:     *slo,
		FullSampleTime: *sample,
		Rates:          slicing.NewRateList(*lb, *gran),
		// Accuracy profile shaped like the paper's Table 4 slicing rows.
		AccuracyAt: func(r float64) float64 { return 0.916 + 0.027*r },
	}
	rng := rand.New(rand.NewSource(*seed))
	arrivals := serving.DiurnalWorkload(*windows, *base, *peak, *burst, 1.5, rng)

	elastic := serving.Simulate(cfg, arrivals)
	fmt.Printf("workload: %d windows, peak %d / trough %d arrivals (%.1fx volatility)\n",
		*windows, elastic.PeakArrivals, elastic.TroughArrivals, elastic.Volatility())
	fmt.Printf("\nmodel slicing (elastic, Equation 3):\n")
	report(elastic)

	for _, r := range []float64{1.0, cfg.Rates.Min()} {
		fixed := serving.FixedCapacityBaseline(cfg, r, arrivals)
		fmt.Printf("\nfixed width %.4g:\n", r)
		report(fixed)
	}
}

func report(s serving.Stats) {
	fmt.Printf("  processed %d queries, SLO violations %d (%.2f%%)\n",
		s.Processed, s.SLOViolations, 100*float64(s.SLOViolations)/float64(s.Processed))
	fmt.Printf("  utilization %.1f%%, mean slice rate %.3f, delivered accuracy %.2f%%\n",
		100*s.Utilization, s.MeanRate, 100*s.WeightedAccuracy)
	var rates []float64
	for r := range s.RateHist {
		rates = append(rates, r)
	}
	sort.Float64s(rates)
	for _, r := range rates {
		n := s.RateHist[r]
		fmt.Printf("  rate %.4g served %6d queries (%.1f%%)\n",
			r, n, 100*float64(n)/float64(s.Processed))
	}
}
