// Command msserve demonstrates the Section 4.1 dynamic-workload serving
// scheme: queries arrive under a latency SLO T, batches form every T/2, and
// the slice rate is chosen per batch from Equation 3 so that every query is
// served in time. It prints the per-rate workload distribution and compares
// against fixed-capacity provisioning.
//
// By default the run is the paper's clock-free simulation. With -live the
// same diurnal trace drives the real concurrent engine in internal/server —
// wall-clock windows, calibrated per-rate timings, admission control — and
// the elastic policy is compared against fixed-width provisioning measured
// on actual hardware.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"modelslicing/internal/demo"
	"modelslicing/internal/server"
	"modelslicing/internal/serving"
	"modelslicing/internal/slicing"
)

func main() {
	windows := flag.Int("windows", 480, "number of T/2 scheduling windows")
	base := flag.Float64("base", 40, "off-peak mean arrivals per window (simulation)")
	peak := flag.Float64("peak", 12, "peak-to-trough workload ratio")
	burst := flag.Float64("burst", 0.03, "probability of a burst window")
	slo := flag.Float64("slo", 100, "latency SLO T (simulation time units)")
	sample := flag.Float64("sample-time", 1, "full-model per-sample time t (simulation)")
	lb := flag.Float64("lb", 0.25, "slice-rate lower bound")
	gran := flag.Int("granularity", 4, "slice granularity")
	seed := flag.Int64("seed", 1, "random seed")
	live := flag.Bool("live", false, "drive the real concurrent server instead of the simulation")
	liveSLO := flag.Duration("live-slo", 20*time.Millisecond, "latency SLO T for -live")
	liveWindows := flag.Int("live-windows", 120, "scheduling windows per arm for -live")
	flag.Parse()

	if *live {
		runLive(*liveSLO, *liveWindows, *peak, *burst, *lb, *gran, *seed)
		return
	}

	cfg := serving.Config{
		LatencySLO:     *slo,
		FullSampleTime: *sample,
		Rates:          slicing.NewRateList(*lb, *gran),
		// Accuracy profile shaped like the paper's Table 4 slicing rows.
		AccuracyAt: func(r float64) float64 { return 0.916 + 0.027*r },
	}
	rng := rand.New(rand.NewSource(*seed))
	arrivals := serving.DiurnalWorkload(*windows, *base, *peak, *burst, 1.5, rng)

	elastic := serving.Simulate(cfg, arrivals)
	fmt.Printf("workload: %d windows, peak %d / trough %d arrivals (%.1fx volatility)\n",
		*windows, elastic.PeakArrivals, elastic.TroughArrivals, elastic.Volatility())
	fmt.Printf("\nmodel slicing (elastic, Equation 3):\n")
	report(elastic)

	for _, r := range []float64{1.0, cfg.Rates.Min()} {
		fixed := serving.FixedCapacityBaseline(cfg, r, arrivals)
		fmt.Printf("\nfixed width %.4g:\n", r)
		report(fixed)
	}
}

func report(s serving.Stats) {
	if s.Processed == 0 {
		fmt.Println("  no queries arrived")
		return
	}
	fmt.Printf("  processed %d queries, SLO violations %d (%.2f%%), backlog-degraded windows %d\n",
		s.Processed, s.SLOViolations, 100*float64(s.SLOViolations)/float64(s.Processed),
		s.DegradedWindows)
	fmt.Printf("  utilization %.1f%%, mean slice rate %.3f, delivered accuracy %.2f%%\n",
		100*s.Utilization, s.MeanRate, 100*s.WeightedAccuracy)
	var rates []float64
	for r := range s.RateHist {
		rates = append(rates, r)
	}
	sort.Float64s(rates)
	for _, r := range rates {
		n := s.RateHist[r]
		fmt.Printf("  rate %.4g served %6d queries (%.1f%%)\n",
			r, n, 100*float64(n)/float64(s.Processed))
	}
}

// runLive measures the elastic policy against fixed-width provisioning on
// the real engine: one trained model, one diurnal trace, three servers.
func runLive(slo time.Duration, windows int, peakRatio, burstProb, lb float64, gran int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("training demo MLP...")
	m := demo.TrainMLP(lb, gran, 30, rng)
	for _, r := range m.Rates {
		fmt.Printf("  rate %.4g  acc %.2f%%\n", r, 100*m.Accuracy[r])
	}

	// Calibrate once (on a throwaway elastic server) to size the workload
	// from this machine's actual capacities, exactly as an operator would.
	probe := mustServer(m, slo, 0)
	times := probe.Calibrator().Snapshot()
	probe.Stop()
	window := (slo / 2).Seconds() * liveHeadroom
	capFull := window / times[1.0]
	capMin := window / times[m.Rates.Min()]
	fmt.Printf("\ncalibration: t(1.0)=%s t(%.4g)=%s → window capacity %d full / %d base\n",
		time.Duration(times[1.0]*float64(time.Second)), m.Rates.Min(),
		time.Duration(times[m.Rates.Min()]*float64(time.Second)), int(capFull), int(capMin))

	// Size the trace so the peak clearly exceeds full-width capacity (the
	// fixed-full arm must drown) while staying well inside the lower
	// bound's (the elastic arm must cope, with slack for intake overhead —
	// driver and server share this machine).
	peakArrivals := math.Min(2.5*capFull, 0.6*capMin)
	baseArrivals := math.Max(peakArrivals/peakRatio, 1)
	arrivals := serving.DiurnalWorkload(windows, baseArrivals, peakArrivals/baseArrivals,
		burstProb, 1.2, rand.New(rand.NewSource(seed+1)))

	type arm struct {
		name      string
		fixedRate float64
	}
	arms := []arm{
		{"model slicing (elastic)", 0},
		{"fixed full width", 1.0},
		{"fixed base width", m.Rates.Min()},
	}
	fmt.Printf("\ndriving %d windows of %s against each arm (live traffic)...\n", windows, slo/2)
	results := make([]server.Stats, len(arms))
	for i, a := range arms {
		srv := mustServer(m, slo, a.fixedRate)
		results[i] = drive(srv, m, arrivals, slo/2, rand.New(rand.NewSource(seed+2)))
	}

	fmt.Printf("\n%-24s %10s %10s %10s %12s %10s %10s\n",
		"policy", "processed", "rejected", "SLO miss", "utilization", "mean rate", "accuracy")
	for i, a := range arms {
		s := results[i]
		fmt.Printf("%-24s %10d %10d %10d %11.1f%% %10.3f %9.2f%%\n",
			a.name, s.Processed, s.Rejected, s.SLOMisses+s.Rejected,
			100*s.Utilization, s.MeanRate, 100*s.WeightedAccuracy)
	}

	// The backlog-aware dispatcher's own counters: how deep the window
	// queue ever got, and how often the deadline budget — not batch size —
	// pushed a batch to a lower rate or past feasibility.
	fmt.Println("\nbacklog scheduler (per arm): peak windows in flight / degraded / infeasible batches")
	for i, a := range arms {
		s := results[i]
		fmt.Printf("  %-24s %4d / %4d / %4d\n",
			a.name, s.PeakBacklogWindows, s.DegradedBatches, s.InfeasibleBatches)
	}

	// End-to-end latency tails from the tracer histograms: the elastic arm's
	// case is precisely that its *tail* stays inside T while fixed-full drowns
	// at the peak — means hide that.
	fmt.Printf("\nlatency per arm (SLO %s): %10s %10s %10s %10s\n", slo, "p50", "p95", "p99", "mean")
	for i, a := range arms {
		l := results[i].Latency
		fmt.Printf("  %-24s %10s %10s %10s %10s\n",
			a.name, l.Quantile(0.50), l.Quantile(0.95), l.Quantile(0.99), l.Mean())
	}
	fmt.Println("\nelastic arm stage breakdown (p95): where the window's time went")
	for _, sl := range results[0].StageLatency {
		fmt.Printf("  %-10s %10s\n", sl.Stage, sl.Hist.Quantile(0.95))
	}

	elastic := results[0]
	fmt.Println("\nper-rate traffic under the elastic policy (live):")
	var rates []float64
	for r := range elastic.RateHist {
		rates = append(rates, r)
	}
	sort.Float64s(rates)
	for _, r := range rates {
		n := elastic.RateHist[r]
		fmt.Printf("  rate %.4g served %6d queries (%.1f%%)\n",
			r, n, 100*float64(n)/float64(elastic.Processed))
	}

	// The same trace through the clock-free simulation, with the policy fed
	// the calibrated curve: live and simulated behaviour should agree
	// qualitatively (both paths schedule through serving.Policy).
	simCfg := serving.Config{
		LatencySLO:     slo.Seconds(),
		FullSampleTime: times[1.0],
		Rates:          m.Rates,
		CostRatio:      func(r float64) float64 { return times[m.Rates.Nearest(r)] / times[1.0] },
		AccuracyAt:     m.AccuracyAt,
	}
	sim := serving.Simulate(simCfg, arrivals)
	fmt.Printf("\nsimulation on the same trace and calibrated curve: violations %d (%.2f%%), degraded windows %d, mean rate %.3f, accuracy %.2f%%\n",
		sim.SLOViolations, 100*float64(sim.SLOViolations)/float64(max(sim.Processed, 1)),
		sim.DegradedWindows, sim.MeanRate, 100*sim.WeightedAccuracy)
}

// liveHeadroom derates the policy window in live mode: the load generator
// shares the machine with the workers, so the policy must not plan to spend
// the whole window on inference.
const liveHeadroom = 0.7

// mustServer builds one live arm over the shared demo model.
func mustServer(m *demo.Model, slo time.Duration, fixedRate float64) *server.Server {
	srv, err := server.New(server.Config{
		Model:      m.Net,
		Rates:      m.Rates,
		InputShape: m.InputShape,
		SLO:        slo,
		FixedRate:  fixedRate,
		Headroom:   liveHeadroom,
		AccuracyAt: m.AccuracyAt,
	})
	if err != nil {
		panic(err)
	}
	return srv
}

// drive replays the arrival trace against a live server in real time: each
// window's queries are submitted at its open, then the driver sleeps to the
// next boundary. Results drain through the buffered per-query channels; the
// server's own counters are the measurement.
func drive(srv *server.Server, m *demo.Model, arrivals []int, window time.Duration, rng *rand.Rand) server.Stats {
	ticker := time.NewTicker(window)
	defer ticker.Stop()
	for _, n := range arrivals {
		for j := 0; j < n; j++ {
			// Pooled test inputs: submission stays cheap enough that the
			// generator keeps pace with the trace it is replaying.
			_, _ = srv.Submit(m.Sample(rng)) // rejections are part of the measurement
		}
		<-ticker.C
	}
	// Let the last windows flush before freezing the counters.
	time.Sleep(2 * window)
	srv.Stop()
	return srv.Stats()
}
