// Command msbench regenerates the paper's tables and figures on the
// synthetic stand-in workloads.
//
// Usage:
//
//	msbench -exp table1 -scale small -seed 42
//	msbench -exp all -scale tiny
//	msbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"modelslicing/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or 'all'")
	scaleFlag := flag.String("scale", "small", "tiny|small|medium")
	seed := flag.Int64("seed", 42, "random seed")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	if *list {
		for _, id := range experiments.List() {
			fmt.Println(id)
		}
		return
	}
	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "msbench: -exp required (or -list)")
		os.Exit(2)
	}
	// Comma-separated ids share one process, so experiments derived from the
	// same trained study (fig5…fig8, table4, table5) reuse its models.
	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experiments.List()
	}
	for _, id := range ids {
		start := time.Now()
		out, err := experiments.Run(id, scale, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("[%s completed in %.1fs]\n\n", id, time.Since(start).Seconds())
	}
}
