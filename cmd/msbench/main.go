// Command msbench regenerates the paper's tables and figures on the
// synthetic stand-in workloads, and records the engine's performance
// trajectory as machine-readable JSON.
//
// Usage:
//
//	msbench -exp table1 -scale small -seed 42
//	msbench -exp all -scale tiny
//	msbench -list
//	msbench -json                       # write BENCH_<unix>.json perf snapshot
//	msbench -json -out p.json           # write to an explicit path
//	msbench -compare old.json           # regression gate: rerun and diff
//	msbench -compare old.json -slowdown 1.5
//	msbench -json -packed=false         # A/B: pin the unpacked GEMM engine
//
// -compare runs a fresh perf suite, diffs it against a prior BENCH_*.json
// (per-size GEMM ns/op, per-rate shared-path ns/sample) and exits non-zero
// if anything slowed down past the -slowdown factor — the CI regression gate
// for the inference hot path. It composes with -json/-out to also persist
// the fresh snapshot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"modelslicing/internal/experiments"
	"modelslicing/internal/models"
	"modelslicing/internal/nn"
	"modelslicing/internal/persist"
	"modelslicing/internal/serving"
	"modelslicing/internal/slicing"
	"modelslicing/internal/tensor"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or 'all'")
	scaleFlag := flag.String("scale", "small", "tiny|small|medium")
	seed := flag.Int64("seed", 42, "random seed")
	list := flag.Bool("list", false, "list available experiments")
	jsonOut := flag.Bool("json", false, "run the perf suite and write a BENCH_*.json snapshot")
	outPath := flag.String("out", "", "output path for -json (default BENCH_<unix>.json)")
	comparePath := flag.String("compare", "", "prior BENCH_*.json to diff a fresh run against; exit 1 past -slowdown")
	slowdown := flag.Float64("slowdown", 1.25, "max tolerated slowdown factor for -compare (new/old ns)")
	packed := flag.Bool("packed", true, "serve through the persistent packed-weight panels; -packed=false pins the unpacked engine")
	tierFlag := flag.String("tier", "exact", "GEMM engine tier for the main perf suite: exact|fma|f32 (exact keeps old baselines comparable)")
	flag.Parse()

	tier, err := tensor.ParseTier(*tierFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msbench: %v\n", err)
		os.Exit(2)
	}

	if *list {
		for _, id := range experiments.List() {
			fmt.Println(id)
		}
		return
	}
	if *comparePath != "" {
		rep := collectBench(*packed, tier)
		if *jsonOut || *outPath != "" {
			if err := writeBenchJSON(rep, *outPath); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		ok, err := compareBench(os.Stdout, *comparePath, rep, *slowdown)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}
	if *jsonOut {
		if err := writeBenchJSON(collectBench(*packed, tier), *outPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "msbench: -exp required (or -list / -json)")
		os.Exit(2)
	}
	// Comma-separated ids share one process, so experiments derived from the
	// same trained study (fig5…fig8, table4, table5) reuse its models.
	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experiments.List()
	}
	for _, id := range ids {
		start := time.Now()
		out, err := experiments.Run(id, scale, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("[%s completed in %.1fs]\n\n", id, time.Since(start).Seconds())
	}
}

// benchReport is the schema of a BENCH_*.json perf snapshot: GEMM kernel
// throughput at a size sweep, and per-rate inference cost of the zero-copy
// serving path versus the Extract deployment path.
type benchReport struct {
	Timestamp  string           `json:"timestamp"`
	GoOS       string           `json:"goos"`
	GoArch     string           `json:"goarch"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Gemm       []gemmPoint      `json:"gemm"`
	Inference  []inferencePoint `json:"inference"`
	// Tier names the engine tier the main suite ran at; empty means exact,
	// so snapshots written before the tier flag existed read back unchanged.
	Tier string `json:"tier,omitempty"`
	// Tiers holds the per-tier sections: a packed 256³ GEMM point and the
	// per-rate shared path on each tier the host supports. Additive —
	// -compare diffs them only when both snapshots carry them.
	Tiers []tierSection `json:"tiers,omitempty"`
	// ColdStart quantifies checkpoint cold start: the legacy copying loader
	// versus the current mmap format, to bind and to first inference.
	// Additive — old snapshots read back unchanged, and -compare reports it
	// informationally without gating (µs-scale syscall timings are too noisy
	// to fail a build over).
	ColdStart *coldStartSection `json:"cold_start,omitempty"`
}

// coldStartSection is the checkpoint cold-start benchmark: one serving-class
// MLP saved in both formats, best-of-N wall time for the legacy v2 copying
// load versus the v3 mmap Open+Bind, alone and through the first full-rate
// single-sample inference (the moment a cold replica starts answering).
type coldStartSection struct {
	Model               string  `json:"model"`
	ParamBytes          int64   `json:"param_bytes"`
	V2LoadNs            float64 `json:"v2_load_ns"`
	V3OpenNs            float64 `json:"v3_open_ns"`
	OpenSpeedup         float64 `json:"open_speedup"`
	V2ToFirstInferNs    float64 `json:"v2_to_first_infer_ns"`
	V3ToFirstInferNs    float64 `json:"v3_to_first_infer_ns"`
	ToFirstInferSpeedup float64 `json:"to_first_infer_speedup"`
}

type gemmPoint struct {
	Size     int     `json:"size"` // square m = n = k
	NsPerOp  float64 `json:"ns_per_op"`
	OpsPerS  float64 `json:"ops_per_s"`
	GFLOPS   float64 `json:"gflops"`
	AllocsOp int64   `json:"allocs_per_op"`
	// PackBytes is the resident packed-operand memory of a packed-GEMM
	// point (tier sections); zero (omitted) in the unpacked main sweep.
	PackBytes int64 `json:"pack_bytes,omitempty"`
}

// tierSection is one engine tier's slice of the perf snapshot.
type tierSection struct {
	Tier      string           `json:"tier"`
	Gemm      []gemmPoint      `json:"gemm"`
	Inference []inferencePoint `json:"inference"`
}

type inferencePoint struct {
	Rate               float64 `json:"rate"`
	NsPerSampleShared  float64 `json:"ns_per_sample_shared"`
	NsPerSampleExtract float64 `json:"ns_per_sample_extract"`
	AllocsOpShared     int64   `json:"allocs_per_op_shared"`
	// P50/P95/P99 are tail percentiles of the shared path's per-sample time
	// over individually timed passes (the mean hides scheduler jitter the
	// serving SLO cares about). Additive fields: older BENCH_*.json baselines
	// stay comparable — the -compare gate only diffs the means.
	P50NsPerSample    float64 `json:"p50_ns_per_sample"`
	P95NsPerSample    float64 `json:"p95_ns_per_sample"`
	P99NsPerSample    float64 `json:"p99_ns_per_sample"`
	SampleTimeSeconds float64 `json:"sample_time_seconds"` // serving calibration of t(r)
	// PackCacheBytes is the shared model's resident weight-pack memory once
	// this rate (and all rates before it in the list) has been served — the
	// O(packs) cost of the elastic widths. Zero under -packed=false.
	PackCacheBytes int64 `json:"pack_cache_bytes"`
}

// collectBench runs the perf suite with the testing harness and returns the
// snapshot. With packed false, every Shared pins the unpacked engine. The
// main suite runs at the given tier (exact by default, so old baselines stay
// comparable); the per-tier sections always sweep every tier the host
// supports.
func collectBench(packed bool, tier tensor.EngineTier) benchReport {
	rep := benchReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if tier != tensor.TierExact {
		rep.Tier = tier.String()
	}

	for _, n := range []int{64, 128, 256, 512} {
		rng := rand.New(rand.NewSource(1))
		a := make([]float64, n*n)
		bm := make([]float64, n*n)
		c := make([]float64, n*n)
		for i := range a {
			a[i], bm[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tensor.GemmT(tier, n, n, n, a, n, bm, n, c, n)
			}
		})
		ns := float64(r.NsPerOp())
		rep.Gemm = append(rep.Gemm, gemmPoint{
			Size:     n,
			NsPerOp:  ns,
			OpsPerS:  1e9 / ns,
			GFLOPS:   2 * float64(n) * float64(n) * float64(n) / ns,
			AllocsOp: r.AllocsPerOp(),
		})
	}

	// Per-rate inference on the benchmark CNN (same model family as the
	// repo's bench_test.go), batch 8, via the zero-copy shared path and the
	// Extract deployment path.
	const batch = 8
	rng := rand.New(rand.NewSource(4))
	model, _ := models.NewVGG(models.VGG13Mini(4, models.NormGroup, 1), rng)
	rates := slicing.NewRateList(0.25, 4)
	shared := slicing.NewShared(model, rates)
	shared.SetPacked(packed)
	shared.SetTier(tier)
	x := tensor.New(batch, 3, 16, 16)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for _, rate := range rates {
		arena := tensor.NewArena()
		shared.Infer(rate, x, arena)
		arena.Reset()
		rs := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				shared.Infer(rate, x, arena)
				arena.Reset()
			}
		})
		sub := slicing.Extract(model, rate, rates)
		subShared := slicing.NewShared(sub, slicing.NewRateList(1, 1))
		subShared.SetPacked(packed)
		subShared.SetTier(tier)
		subShared.Infer(1, x, arena)
		arena.Reset()
		re := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				subShared.Infer(1, x, arena)
				arena.Reset()
			}
		})
		p50, p95, p99 := inferPercentiles(shared, rate, x, arena, batch)
		rep.Inference = append(rep.Inference, inferencePoint{
			Rate:               rate,
			NsPerSampleShared:  float64(rs.NsPerOp()) / batch,
			NsPerSampleExtract: float64(re.NsPerOp()) / batch,
			AllocsOpShared:     rs.AllocsPerOp(),
			P50NsPerSample:     p50,
			P95NsPerSample:     p95,
			P99NsPerSample:     p99,
			PackCacheBytes:     shared.PackCacheBytes(),
		})
	}
	// Calibrate t(r) only after the per-rate loop: MeasureSharedSampleTimes
	// serves every rate, which would pre-build every width's pack and turn
	// the per-rate PackCacheBytes column into a flat all-rates total.
	sampleTime := serving.MeasureSharedSampleTimes(shared, []int{3, 16, 16}, batch)
	for i := range rep.Inference {
		rep.Inference[i].SampleTimeSeconds = sampleTime(rep.Inference[i].Rate)
	}
	rep.Tiers = collectTierSections(packed)
	rep.ColdStart = collectColdStart()
	return rep
}

// collectColdStart saves one serving-class MLP (the msserver demo family,
// scaled to a realistic parameter count) in both checkpoint formats and times
// the two cold-start paths best-of-N: the legacy v2 copying loader versus the
// v3 mmap Open+Bind, each alone and through the first full-rate inference.
// Returns nil (section omitted) if scratch files cannot be written.
func collectColdStart() *coldStartSection {
	const gran = 4
	rates := slicing.NewRateList(0.25, gran)
	newModel := func() nn.Layer {
		return models.NewMLP(256, []int{256, 256}, 10, gran, rand.New(rand.NewSource(7)))
	}
	dir, err := os.MkdirTemp("", "msbench-coldstart")
	if err != nil {
		return nil
	}
	defer os.RemoveAll(dir)
	src := newModel()
	v2Path := filepath.Join(dir, "m.v2.ckpt")
	v3Path := filepath.Join(dir, "m.v3.ckpt")
	if persist.SaveV2(v2Path, src.Params()) != nil || persist.SaveEpoch(v3Path, src.Params(), 1) != nil {
		return nil
	}
	sec := &coldStartSection{Model: "mlp 256-256-256-10"}
	for _, p := range src.Params() {
		sec.ParamBytes += int64(8 * len(p.Value.Data))
	}

	x := tensor.New(1, 256)
	rng := rand.New(rand.NewSource(8))
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	arena := tensor.NewArena()
	// The first inference runs at the lower-bound rate: the conservative
	// width a cold replica's first window can always serve, and the narrow
	// slice keeps the measurement about checkpoint I/O rather than the
	// full-width pack build both paths pay identically.
	firstInfer := func(m nn.Layer) {
		slicing.NewShared(m, rates).Infer(rates.Min(), x, arena)
		arena.Reset()
	}

	const runs = 7
	best := func(f func() (load, total time.Duration, err error)) (bl, bt float64, ok bool) {
		bl, bt = math.MaxFloat64, math.MaxFloat64
		for i := 0; i < runs; i++ {
			l, t, err := f()
			if err != nil {
				return 0, 0, false
			}
			bl = math.Min(bl, float64(l.Nanoseconds()))
			bt = math.Min(bt, float64(t.Nanoseconds()))
		}
		return bl, bt, true
	}
	var ok bool
	sec.V2LoadNs, sec.V2ToFirstInferNs, ok = best(func() (time.Duration, time.Duration, error) {
		m := newModel()
		start := time.Now()
		if err := persist.Load(v2Path, m.Params()); err != nil {
			return 0, 0, err
		}
		load := time.Since(start)
		firstInfer(m)
		return load, time.Since(start), nil
	})
	if !ok {
		return nil
	}
	sec.V3OpenNs, sec.V3ToFirstInferNs, ok = best(func() (time.Duration, time.Duration, error) {
		m := newModel()
		start := time.Now()
		ck, err := persist.Open(v3Path)
		if err != nil {
			return 0, 0, err
		}
		if err := ck.Bind(m.Params()); err != nil {
			ck.Close()
			return 0, 0, err
		}
		open := time.Since(start)
		firstInfer(m)
		total := time.Since(start)
		// The bound tensors alias the mapping; nothing touches them past the
		// measurement, so the scratch mapping can go.
		ck.Close()
		return open, total, nil
	})
	if !ok {
		return nil
	}
	sec.OpenSpeedup = sec.V2LoadNs / sec.V3OpenNs
	sec.ToFirstInferSpeedup = sec.V2ToFirstInferNs / sec.V3ToFirstInferNs
	return sec
}

// collectTierSections measures every engine tier the host supports: one
// packed 256³ GEMM point (the tiers' kernel-level throughput ladder) and the
// per-rate zero-copy inference path, each tier on a fresh model so the
// reported pack bytes isolate that tier's pack precision.
func collectTierSections(packed bool) []tierSection {
	tiers := []tensor.EngineTier{tensor.TierExact}
	if tensor.HasFMA() {
		tiers = append(tiers, tensor.TierFMA, tensor.TierF32)
	}
	const batch = 8
	var out []tierSection
	for _, tier := range tiers {
		sec := tierSection{Tier: tier.String()}

		// Packed 256³ GEMM: the exact and fma engines stream the shared f64
		// panels, the f32 engine its scaled-float32 panels.
		const n = 256
		rng := rand.New(rand.NewSource(1))
		a := make([]float64, n*n)
		bt := make([]float64, n*n)
		c := make([]float64, n*n)
		for i := range a {
			a[i], bt[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		var pb tensor.Packed
		if tier == tensor.TierF32 {
			pb = tensor.PackTB32(n, n, bt, n)
		} else {
			pb = tensor.PackTB(n, n, bt, n)
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tensor.GemmTBPackedExT(tier, n, n, n, a, n, pb, c, n, nil)
			}
		})
		ns := float64(r.NsPerOp())
		sec.Gemm = append(sec.Gemm, gemmPoint{
			Size:      n,
			NsPerOp:   ns,
			OpsPerS:   1e9 / ns,
			GFLOPS:    2 * float64(n) * float64(n) * float64(n) / ns,
			AllocsOp:  r.AllocsPerOp(),
			PackBytes: int64(pb.Bytes()),
		})

		// Per-rate inference on a fresh benchmark CNN at this tier.
		mrng := rand.New(rand.NewSource(4))
		model, _ := models.NewVGG(models.VGG13Mini(4, models.NormGroup, 1), mrng)
		rates := slicing.NewRateList(0.25, 4)
		shared := slicing.NewShared(model, rates)
		shared.SetPacked(packed)
		shared.SetTier(tier)
		x := tensor.New(batch, 3, 16, 16)
		for i := range x.Data {
			x.Data[i] = mrng.NormFloat64()
		}
		arena := tensor.NewArena()
		for _, rate := range rates {
			shared.Infer(rate, x, arena)
			arena.Reset()
			rs := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					shared.Infer(rate, x, arena)
					arena.Reset()
				}
			})
			sec.Inference = append(sec.Inference, inferencePoint{
				Rate:              rate,
				NsPerSampleShared: float64(rs.NsPerOp()) / batch,
				AllocsOpShared:    rs.AllocsPerOp(),
				PackCacheBytes:    shared.PackCacheBytes(),
			})
		}
		out = append(out, sec)
	}
	return out
}

// inferPercentiles times individual passes and returns nearest-rank
// p50/p95/p99 of the per-sample time in nanoseconds. 96 runs put two runs
// past the p99 rank — enough to make the tail a measurement, not an echo of
// the maximum.
func inferPercentiles(shared *slicing.Shared, rate float64, x *tensor.Tensor, arena *tensor.Arena, batch int) (p50, p95, p99 float64) {
	const runs = 96
	samples := make([]float64, runs)
	for i := range samples {
		start := time.Now()
		shared.Infer(rate, x, arena)
		samples[i] = float64(time.Since(start).Nanoseconds()) / float64(batch)
		arena.Reset()
	}
	sort.Float64s(samples)
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*runs)) - 1
		return samples[min(max(i, 0), runs-1)]
	}
	return rank(0.50), rank(0.95), rank(0.99)
}

// writeBenchJSON persists a snapshot; path defaults to BENCH_<unix>.json in
// the working directory.
func writeBenchJSON(rep benchReport, path string) error {
	if path == "" {
		path = fmt.Sprintf("BENCH_%d.json", time.Now().Unix())
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println(path)
	return nil
}

// compareBench diffs a fresh report against a prior snapshot, writing a
// per-metric table to w, and reports whether every matched metric stayed
// within the slowdown factor (new ns ≤ old ns · slowdown). Metrics present
// on only one side (a new GEMM size, a changed rate list) are reported but
// never fail the gate.
func compareBench(w io.Writer, oldPath string, fresh benchReport, slowdown float64) (ok bool, err error) {
	data, err := os.ReadFile(oldPath)
	if err != nil {
		return false, fmt.Errorf("msbench: -compare: %w", err)
	}
	var old benchReport
	if err := json.Unmarshal(data, &old); err != nil {
		return false, fmt.Errorf("msbench: -compare %s: %w", oldPath, err)
	}
	if slowdown <= 0 {
		return false, fmt.Errorf("msbench: -slowdown must be positive, got %v", slowdown)
	}

	ok = true
	fmt.Fprintf(w, "comparing against %s (recorded %s, %s/%s, GOMAXPROCS %d)\n",
		oldPath, old.Timestamp, old.GoOS, old.GoArch, old.GoMaxProcs)
	fmt.Fprintf(w, "%-28s %14s %14s %8s\n", "metric", "old", "new", "ratio")
	row := func(name string, oldNs, newNs float64) {
		ratio := newNs / oldNs
		verdict := ""
		if ratio > slowdown {
			verdict = "  REGRESSION"
			ok = false
		}
		fmt.Fprintf(w, "%-28s %12.0fns %12.0fns %7.2fx%s\n", name, oldNs, newNs, ratio, verdict)
	}
	oldGemm := make(map[int]gemmPoint, len(old.Gemm))
	for _, g := range old.Gemm {
		oldGemm[g.Size] = g
	}
	matchedGemm := make(map[int]bool, len(fresh.Gemm))
	for _, g := range fresh.Gemm {
		matchedGemm[g.Size] = true
		og, found := oldGemm[g.Size]
		if !found || og.NsPerOp <= 0 {
			fmt.Fprintf(w, "%-28s %14s %12.0fns\n", fmt.Sprintf("gemm %d (no baseline)", g.Size), "-", g.NsPerOp)
			continue
		}
		row(fmt.Sprintf("gemm %d³ ns/op", g.Size), og.NsPerOp, g.NsPerOp)
	}
	for _, g := range old.Gemm {
		if !matchedGemm[g.Size] {
			fmt.Fprintf(w, "%-28s %12.0fns %14s\n", fmt.Sprintf("gemm %d (removed)", g.Size), g.NsPerOp, "-")
		}
	}
	oldInf := make(map[float64]inferencePoint, len(old.Inference))
	for _, p := range old.Inference {
		oldInf[p.Rate] = p
	}
	matchedInf := make(map[float64]bool, len(fresh.Inference))
	for _, p := range fresh.Inference {
		matchedInf[p.Rate] = true
		op, found := oldInf[p.Rate]
		if !found || op.NsPerSampleShared <= 0 {
			fmt.Fprintf(w, "%-28s %14s %12.0fns\n", fmt.Sprintf("rate %.2f (no baseline)", p.Rate), "-", p.NsPerSampleShared)
			continue
		}
		row(fmt.Sprintf("rate %.2f ns/sample", p.Rate), op.NsPerSampleShared, p.NsPerSampleShared)
	}
	for _, p := range old.Inference {
		if !matchedInf[p.Rate] {
			fmt.Fprintf(w, "%-28s %12.0fns %14s\n", fmt.Sprintf("rate %.2f (removed)", p.Rate), p.NsPerSampleShared, "-")
		}
	}
	// Tier sections are additive: snapshots written before they existed (or
	// on hosts with a different tier ladder) simply skip this block — only
	// tiers present on both sides are gated.
	oldTiers := make(map[string]tierSection, len(old.Tiers))
	for _, ts := range old.Tiers {
		oldTiers[ts.Tier] = ts
	}
	for _, ts := range fresh.Tiers {
		ots, found := oldTiers[ts.Tier]
		if !found {
			continue
		}
		og := make(map[int]gemmPoint, len(ots.Gemm))
		for _, g := range ots.Gemm {
			og[g.Size] = g
		}
		for _, g := range ts.Gemm {
			if o, hit := og[g.Size]; hit && o.NsPerOp > 0 {
				row(fmt.Sprintf("tier %s gemm %d³ ns/op", ts.Tier, g.Size), o.NsPerOp, g.NsPerOp)
			}
		}
		oi := make(map[float64]inferencePoint, len(ots.Inference))
		for _, p := range ots.Inference {
			oi[p.Rate] = p
		}
		for _, p := range ts.Inference {
			if o, hit := oi[p.Rate]; hit && o.NsPerSampleShared > 0 {
				row(fmt.Sprintf("tier %s rate %.2f ns/sample", ts.Tier, p.Rate), o.NsPerSampleShared, p.NsPerSampleShared)
			}
		}
	}
	// Cold start is informational only: the timings are µs-scale syscall
	// measurements whose jitter would make the gate cry wolf.
	if old.ColdStart != nil && fresh.ColdStart != nil {
		fmt.Fprintf(w, "%-28s %12.0fns %12.0fns %7.2fx  (info)\n", "cold start: v3 open",
			old.ColdStart.V3OpenNs, fresh.ColdStart.V3OpenNs, fresh.ColdStart.V3OpenNs/old.ColdStart.V3OpenNs)
		fmt.Fprintf(w, "%-28s %12.0fns %12.0fns %7.2fx  (info)\n", "cold start: v3 first infer",
			old.ColdStart.V3ToFirstInferNs, fresh.ColdStart.V3ToFirstInferNs,
			fresh.ColdStart.V3ToFirstInferNs/old.ColdStart.V3ToFirstInferNs)
	}
	if ok {
		fmt.Fprintf(w, "OK: no metric slowed past %.2fx\n", slowdown)
	} else {
		fmt.Fprintf(w, "FAIL: slowdown past %.2fx detected\n", slowdown)
	}
	return ok, nil
}
