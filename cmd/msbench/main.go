// Command msbench regenerates the paper's tables and figures on the
// synthetic stand-in workloads, and records the engine's performance
// trajectory as machine-readable JSON.
//
// Usage:
//
//	msbench -exp table1 -scale small -seed 42
//	msbench -exp all -scale tiny
//	msbench -list
//	msbench -json              # write BENCH_<unix>.json perf snapshot
//	msbench -json -out p.json  # write to an explicit path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"modelslicing/internal/experiments"
	"modelslicing/internal/models"
	"modelslicing/internal/serving"
	"modelslicing/internal/slicing"
	"modelslicing/internal/tensor"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or 'all'")
	scaleFlag := flag.String("scale", "small", "tiny|small|medium")
	seed := flag.Int64("seed", 42, "random seed")
	list := flag.Bool("list", false, "list available experiments")
	jsonOut := flag.Bool("json", false, "run the perf suite and write a BENCH_*.json snapshot")
	outPath := flag.String("out", "", "output path for -json (default BENCH_<unix>.json)")
	flag.Parse()

	if *list {
		for _, id := range experiments.List() {
			fmt.Println(id)
		}
		return
	}
	if *jsonOut {
		if err := writeBenchJSON(*outPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "msbench: -exp required (or -list / -json)")
		os.Exit(2)
	}
	// Comma-separated ids share one process, so experiments derived from the
	// same trained study (fig5…fig8, table4, table5) reuse its models.
	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experiments.List()
	}
	for _, id := range ids {
		start := time.Now()
		out, err := experiments.Run(id, scale, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("[%s completed in %.1fs]\n\n", id, time.Since(start).Seconds())
	}
}

// benchReport is the schema of a BENCH_*.json perf snapshot: GEMM kernel
// throughput at a size sweep, and per-rate inference cost of the zero-copy
// serving path versus the Extract deployment path.
type benchReport struct {
	Timestamp  string           `json:"timestamp"`
	GoOS       string           `json:"goos"`
	GoArch     string           `json:"goarch"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Gemm       []gemmPoint      `json:"gemm"`
	Inference  []inferencePoint `json:"inference"`
}

type gemmPoint struct {
	Size     int     `json:"size"` // square m = n = k
	NsPerOp  float64 `json:"ns_per_op"`
	OpsPerS  float64 `json:"ops_per_s"`
	GFLOPS   float64 `json:"gflops"`
	AllocsOp int64   `json:"allocs_per_op"`
}

type inferencePoint struct {
	Rate               float64 `json:"rate"`
	NsPerSampleShared  float64 `json:"ns_per_sample_shared"`
	NsPerSampleExtract float64 `json:"ns_per_sample_extract"`
	AllocsOpShared     int64   `json:"allocs_per_op_shared"`
	SampleTimeSeconds  float64 `json:"sample_time_seconds"` // serving calibration of t(r)
}

// writeBenchJSON runs the perf suite with the testing harness and writes the
// snapshot; path defaults to BENCH_<unix>.json in the working directory.
func writeBenchJSON(path string) error {
	rep := benchReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	for _, n := range []int{64, 128, 256, 512} {
		rng := rand.New(rand.NewSource(1))
		a := make([]float64, n*n)
		bm := make([]float64, n*n)
		c := make([]float64, n*n)
		for i := range a {
			a[i], bm[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tensor.Gemm(n, n, n, a, n, bm, n, c, n)
			}
		})
		ns := float64(r.NsPerOp())
		rep.Gemm = append(rep.Gemm, gemmPoint{
			Size:     n,
			NsPerOp:  ns,
			OpsPerS:  1e9 / ns,
			GFLOPS:   2 * float64(n) * float64(n) * float64(n) / ns,
			AllocsOp: r.AllocsPerOp(),
		})
	}

	// Per-rate inference on the benchmark CNN (same model family as the
	// repo's bench_test.go), batch 8, via the zero-copy shared path and the
	// Extract deployment path.
	const batch = 8
	rng := rand.New(rand.NewSource(4))
	model, _ := models.NewVGG(models.VGG13Mini(4, models.NormGroup, 1), rng)
	rates := slicing.NewRateList(0.25, 4)
	shared := slicing.NewShared(model, rates)
	sampleTime := serving.MeasureSampleTimes(model, rates, []int{3, 16, 16}, batch)
	x := tensor.New(batch, 3, 16, 16)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for _, rate := range rates {
		arena := tensor.NewArena()
		shared.Infer(rate, x, arena)
		arena.Reset()
		rs := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				shared.Infer(rate, x, arena)
				arena.Reset()
			}
		})
		sub := slicing.Extract(model, rate, rates)
		subShared := slicing.NewShared(sub, slicing.NewRateList(1, 1))
		subShared.Infer(1, x, arena)
		arena.Reset()
		re := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				subShared.Infer(1, x, arena)
				arena.Reset()
			}
		})
		rep.Inference = append(rep.Inference, inferencePoint{
			Rate:               rate,
			NsPerSampleShared:  float64(rs.NsPerOp()) / batch,
			NsPerSampleExtract: float64(re.NsPerOp()) / batch,
			AllocsOpShared:     rs.AllocsPerOp(),
			SampleTimeSeconds:  sampleTime(rate),
		})
	}

	if path == "" {
		path = fmt.Sprintf("BENCH_%d.json", time.Now().Unix())
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println(path)
	return nil
}
