package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, rep benchReport) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "old.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleReport(gemmNs, infNs float64) benchReport {
	return benchReport{
		Timestamp: "2026-01-01T00:00:00Z", GoOS: "linux", GoArch: "amd64", GoMaxProcs: 1,
		Gemm: []gemmPoint{{Size: 64, NsPerOp: gemmNs}, {Size: 128, NsPerOp: 8 * gemmNs}},
		Inference: []inferencePoint{
			{Rate: 0.25, NsPerSampleShared: infNs},
			{Rate: 1, NsPerSampleShared: 4 * infNs},
		},
	}
}

// TestCompareBenchWithinThreshold: identical metrics pass any threshold > 1.
func TestCompareBenchWithinThreshold(t *testing.T) {
	old := sampleReport(1000, 5000)
	path := writeReport(t, old)
	var buf bytes.Buffer
	ok, err := compareBench(&buf, path, old, 1.25)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v\n%s", ok, err, buf.String())
	}
	if !strings.Contains(buf.String(), "OK: no metric slowed past 1.25x") {
		t.Fatalf("missing verdict line:\n%s", buf.String())
	}
}

// TestCompareBenchDetectsRegression: a metric past the slowdown factor fails
// the gate and is called out.
func TestCompareBenchDetectsRegression(t *testing.T) {
	path := writeReport(t, sampleReport(1000, 5000))
	fresh := sampleReport(1000, 5000)
	fresh.Inference[1].NsPerSampleShared *= 2 // rate 1.0 got 2x slower
	var buf bytes.Buffer
	ok, err := compareBench(&buf, path, fresh, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("2x slowdown passed a 1.25x gate:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "rate 1.00 ns/sample") {
		t.Fatalf("regression not attributed:\n%s", out)
	}
	// Speedups and in-threshold metrics must not be flagged.
	if strings.Count(out, "REGRESSION") != 1 {
		t.Fatalf("want exactly one flagged metric:\n%s", out)
	}
}

// TestCompareBenchSkipsUnmatchedMetrics: metrics without a baseline, and
// baseline metrics absent from the fresh run, are reported but never fail
// the gate.
func TestCompareBenchSkipsUnmatchedMetrics(t *testing.T) {
	old := sampleReport(1000, 5000)
	old.Gemm = old.Gemm[:1]           // drop size 128 from the baseline
	old.Inference = old.Inference[:1] // drop rate 1.0
	path := writeReport(t, old)
	var buf bytes.Buffer
	ok, err := compareBench(&buf, path, sampleReport(1000, 5000), 1.25)
	if err != nil || !ok {
		t.Fatalf("unmatched metrics failed the gate: ok=%v err=%v\n%s", ok, err, buf.String())
	}
	if !strings.Contains(buf.String(), "no baseline") {
		t.Fatalf("unmatched metrics not reported:\n%s", buf.String())
	}

	// The mirror case: metrics recorded in the baseline but missing from
	// the fresh run must be called out as removed, not silently dropped.
	fullPath := writeReport(t, sampleReport(1000, 5000))
	fresh := sampleReport(1000, 5000)
	fresh.Gemm = fresh.Gemm[:1]
	fresh.Inference = fresh.Inference[:1]
	buf.Reset()
	ok, err = compareBench(&buf, fullPath, fresh, 1.25)
	if err != nil || !ok {
		t.Fatalf("removed metrics failed the gate: ok=%v err=%v\n%s", ok, err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "gemm 128 (removed)") || !strings.Contains(out, "rate 1.00 (removed)") {
		t.Fatalf("removed metrics not reported:\n%s", out)
	}
}

// TestColdStartSection runs the checkpoint cold-start benchmark end to end
// and sanity-checks its physics: both paths measured, the mmap Open strictly
// cheaper than the copying load, and the section surviving a JSON round trip
// (including its absence — old baselines carry no cold_start key).
func TestColdStartSection(t *testing.T) {
	sec := collectColdStart()
	if sec == nil {
		t.Fatal("collectColdStart returned no section")
	}
	if sec.ParamBytes <= 0 || sec.V2LoadNs <= 0 || sec.V3OpenNs <= 0 ||
		sec.V2ToFirstInferNs <= 0 || sec.V3ToFirstInferNs <= 0 {
		t.Fatalf("unmeasured fields: %+v", sec)
	}
	if sec.V3OpenNs >= sec.V2LoadNs {
		t.Fatalf("mmap open (%.0fns) not cheaper than the copying load (%.0fns)", sec.V3OpenNs, sec.V2LoadNs)
	}
	if sec.V3ToFirstInferNs >= sec.V2ToFirstInferNs {
		t.Fatalf("mmap path to first inference (%.0fns) not cheaper than the copying path (%.0fns)",
			sec.V3ToFirstInferNs, sec.V2ToFirstInferNs)
	}
	t.Logf("%s (%d KiB): open %.1fx faster (%.0fns vs %.0fns), to first inference %.1fx (%.0fns vs %.0fns)",
		sec.Model, sec.ParamBytes>>10, sec.OpenSpeedup, sec.V3OpenNs, sec.V2LoadNs,
		sec.ToFirstInferSpeedup, sec.V3ToFirstInferNs, sec.V2ToFirstInferNs)

	rep := sampleReport(1000, 5000)
	rep.ColdStart = sec
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back benchReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ColdStart == nil || *back.ColdStart != *sec {
		t.Fatalf("cold_start did not survive the JSON round trip: %+v", back.ColdStart)
	}
	// Old snapshots (no cold_start key) must read back with a nil section,
	// and comparing across the presence boundary must not gate on it.
	path := writeReport(t, sampleReport(1000, 5000))
	var buf bytes.Buffer
	ok, err := compareBench(&buf, path, rep, 1.25)
	if err != nil || !ok {
		t.Fatalf("cold_start presence mismatch failed the gate: ok=%v err=%v\n%s", ok, err, buf.String())
	}
}

// TestCompareBenchErrors: unreadable or malformed baselines and non-positive
// thresholds are errors, not silent passes.
func TestCompareBenchErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := compareBench(&buf, filepath.Join(t.TempDir(), "missing.json"), sampleReport(1, 1), 1.25); err == nil {
		t.Fatal("missing baseline accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := compareBench(&buf, bad, sampleReport(1, 1), 1.25); err == nil {
		t.Fatal("malformed baseline accepted")
	}
	good := writeReport(t, sampleReport(1, 1))
	if _, err := compareBench(&buf, good, sampleReport(1, 1), 0); err == nil {
		t.Fatal("non-positive slowdown accepted")
	}
}
