// Package modelslicing is a from-scratch Go reproduction of "Model Slicing
// for Supporting Complex Analytics with Elastic Inference Cost and Resource
// Constraints" (Cai, Chen, Ooi, Gao — PVLDB 13(2), 2019).
//
// Model slicing trains a single neural network whose layers are divided into
// ordered groups of components; a scalar slice rate r ∈ (0,1] selects the
// leading groups of every layer at inference time, so one trained model
// serves predictions at many cost points — computation, memory and
// parameters all shrink ≈ quadratically with r (Equation 3 of the paper).
//
// This root package is the public facade over the internal engine:
//
//   - build slicing-ready models (MLP, VGG, ResNet, NNLM) or compose layers
//     from the nn building blocks,
//   - train them with Algorithm 1 via Trainer and a slice-rate Scheduler,
//   - serve at any rate with Predict, resolve budgets with BudgetRate,
//   - extract standalone deployable subnets with Extract,
//   - measure cost with MeasureCost.
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package modelslicing

import (
	"math/rand"

	"modelslicing/internal/cost"
	"modelslicing/internal/fleet"
	"modelslicing/internal/nn"
	"modelslicing/internal/server"
	"modelslicing/internal/serving"
	"modelslicing/internal/slicing"
	"modelslicing/internal/tensor"
	"modelslicing/internal/train"
)

// Re-exported core types. The aliases expose the internal engine's types
// directly so the facade adds no wrapping overhead.
type (
	// Tensor is a dense row-major float64 tensor.
	Tensor = tensor.Tensor
	// Layer is the forward/backward unit of composition.
	Layer = nn.Layer
	// Context carries training mode and the slice rate through a pass.
	Context = nn.Context
	// Param is a learnable parameter with its gradient.
	Param = nn.Param
	// RateList is the ordered list of valid slice rates.
	RateList = slicing.RateList
	// Scheduler draws the slice-rate list Lt per training pass.
	Scheduler = slicing.Scheduler
	// Trainer runs the Algorithm-1 training loop.
	Trainer = slicing.Trainer
	// SGD is stochastic gradient descent with momentum and weight decay.
	SGD = train.SGD
	// Batch is one supervised mini-batch.
	Batch = train.Batch
	// EvalResult aggregates evaluation over a dataset.
	EvalResult = train.EvalResult
)

// NewTensor allocates a zero tensor of the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// NewRateList builds slice rates from lb to 1.0 in steps of 1/granularity.
func NewRateList(lb float64, granularity int) RateList {
	return slicing.NewRateList(lb, granularity)
}

// NewTrainer constructs an Algorithm-1 trainer.
func NewTrainer(model Layer, rates RateList, sched Scheduler, opt *SGD, rng *rand.Rand) *Trainer {
	return slicing.NewTrainer(model, rates, sched, opt, rng)
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return train.NewSGD(lr, momentum, weightDecay)
}

// Scheduling schemes of Section 3.4.
var (
	// NewRandomUniform samples k rates uniformly per pass.
	NewRandomUniform = slicing.NewRandomUniform
	// NewRandomWeighted samples k rates from explicit importance weights.
	NewRandomWeighted = slicing.NewRandomWeighted
	// NewRMinMax pins the base and full network and samples one more rate —
	// the scheme the paper recommends for larger datasets.
	NewRMinMax = slicing.NewRMinMax
	// NewRMin pins the base network only.
	NewRMin = slicing.NewRMin
	// NewRMax pins the full network only.
	NewRMax = slicing.NewRMax
)

// StaticSchedule trains every rate each pass (SlimmableNet-style).
func StaticSchedule(rates RateList) Scheduler { return slicing.Static{Rates: rates} }

// FixedSchedule always trains the single given rate (conventional training).
func FixedSchedule(rate float64) Scheduler { return slicing.Fixed{Rate: rate} }

// Predict runs an inference pass at slice rate r.
func Predict(model Layer, rates RateList, r float64, x *Tensor) *Tensor {
	return slicing.Predict(model, rates, r, x)
}

// Evaluate computes loss and accuracy at slice rate r over batches.
func Evaluate(model Layer, rates RateList, r float64, batches []Batch) EvalResult {
	idx := 0
	if i, err := rates.Index(r); err == nil {
		idx = i
	}
	return train.Evaluate(model, r, idx, batches)
}

// Extract builds a standalone copy of the subnet at rate r whose parameter
// and memory footprint is that of the small model (Section 3.1 deployment).
func Extract(model Layer, r float64, rates RateList) Layer {
	return slicing.Extract(model, r, rates)
}

// Zero-copy inference engine. Shared serves every slice rate in place from
// one read-only parent weight set (no Extract copies), and Arena recycles
// activation buffers so steady-state inference performs no heap allocation.
type (
	// Shared is the zero-copy multi-rate serving handle; safe for
	// concurrent use with per-goroutine arenas.
	Shared = slicing.Shared
	// Arena is a reusable activation-buffer arena for one goroutine.
	Arena = tensor.Arena
)

// NewShared wraps a trained model for zero-copy multi-rate inference.
func NewShared(model Layer, rates RateList) *Shared {
	return slicing.NewShared(model, rates)
}

// NewArena returns an empty activation arena; it grows to the high-water
// mark of the first inference pass and is then reused via Reset.
func NewArena() *Arena { return tensor.NewArena() }

// EngineTier selects the GEMM engine's speed/accuracy trade-off for a
// Shared (Shared.SetTier): TierExact is bit-exact, TierFMA contracts
// multiply-adds (≤1e-9 relative vs exact), TierF32 adds scaled-float32
// weight packs with f64 accumulation (≤1e-4, half the pack bytes). See
// DESIGN.md §12.
type EngineTier = tensor.EngineTier

// The engine tiers, in ascending speed / descending accuracy order.
const (
	TierExact = tensor.TierExact
	TierFMA   = tensor.TierFMA
	TierF32   = tensor.TierF32
)

// ParseTier maps "exact", "fma" or "f32" to its EngineTier.
func ParseTier(s string) (EngineTier, error) { return tensor.ParseTier(s) }

// MeasureSampleTimes calibrates per-sample inference seconds t(r) at every
// rate by timing the zero-copy path, for use as Policy.SampleTime.
func MeasureSampleTimes(model Layer, rates RateList, inShape []int, batch int) func(r float64) float64 {
	return serving.MeasureSampleTimes(model, rates, inShape, batch)
}

// CostProfile reports multiply-accumulates, resident parameters and
// activation volume of one forward pass.
type CostProfile = cost.Profile

// MeasureCost profiles one forward pass at slice rate r for a single-sample
// input shape (e.g. [3, 32, 32] for images, [T] for token sequences).
func MeasureCost(model Layer, inShape []int, r float64) CostProfile {
	p, _ := cost.Measure(model, inShape, r)
	return p
}

// BudgetRate resolves a runtime computation budget to the largest slice
// rate whose cost fits (Equation 3): r ≤ min(√(Ct/C0), 1), snapped to the
// rate list.
func BudgetRate(rates RateList, budgetMACs, fullMACs float64) float64 {
	return rates.BudgetRate(budgetMACs, fullMACs)
}

// Live serving (Section 4.1). Policy is the Equation-3 scheduling decision
// shared by the clock-free simulation and the concurrent server, so the two
// paths cannot drift; Server batches real queries every T/2 and serves each
// batch at the largest rate the policy admits — budgeted against the
// window's remaining deadline slack under calibrated timings, so backlog
// degrades rates visibly instead of cascading into silent SLO misses.
type (
	// Policy picks the largest slice rate serving n queries within the
	// window's remaining budget (Choose for a fresh T/2, ChooseSlack for
	// the backlog-aware remainder).
	Policy = serving.Policy
	// Server is the live SLO-aware batching inference server.
	Server = server.Server
	// ServerConfig parameterizes a live server.
	ServerConfig = server.Config
	// ServerResult is the answer to one served query.
	ServerResult = server.Result
	// ServerStats snapshots a live server's counters.
	ServerStats = server.Stats
)

// NewPolicy builds the Equation-3 policy with the idealized quadratic cost
// curve t(r) = fullSampleTime·r².
func NewPolicy(rates RateList, latencySLO, fullSampleTime float64) Policy {
	return serving.NewPolicy(rates, latencySLO, fullSampleTime)
}

// NewServer starts a live server over a trained model; release it with
// (*Server).Stop. See internal/server for the engine's architecture.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Fleet serving: a coordinator routes queries over N replica servers with
// the same Equation-3 arithmetic the single node uses — each query to the
// replica whose backlog admits its window at the highest rate — with
// health-checked ejection/rejoin, retry on a different replica, and
// straggler hedging. See internal/fleet and DESIGN.md §14.
type (
	// Coordinator fronts a fleet of replica servers.
	Coordinator = fleet.Coordinator
	// CoordinatorConfig parameterizes a fleet coordinator.
	CoordinatorConfig = fleet.Config
)

// NewCoordinator starts a fleet coordinator; add members with
// (*Coordinator).AddReplica and release it with (*Coordinator).Stop.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) { return fleet.New(cfg) }
