// Anytime prediction: the same input is answered progressively — start at
// the base network for an instant cheap answer, then widen the slice rate as
// budget allows, reusing the one trained model (Section 2.1's anytime
// setting, served by width slicing instead of early exits).
package main

import (
	"fmt"
	"math/rand"

	ms "modelslicing"
	"modelslicing/internal/models"
	"modelslicing/internal/nn"
)

func main() {
	rng := rand.New(rand.NewSource(5))

	rates := ms.NewRateList(0.25, 4)
	model := models.NewMLP(12, []int{32, 32}, 3, 4, rng)
	makeBatches := func(n int) []ms.Batch {
		var batches []ms.Batch
		for start := 0; start < n; start += 16 {
			x := ms.NewTensor(16, 12)
			labels := make([]int, 16)
			for i := 0; i < 16; i++ {
				c := rng.Intn(3)
				labels[i] = c
				for j := 0; j < 12; j++ {
					v := rng.NormFloat64() * 0.9
					if j%3 == c {
						v += 1.6
					}
					x.Set(v, i, j)
				}
			}
			batches = append(batches, ms.Batch{X: x, Labels: labels})
		}
		return batches
	}
	trainer := ms.NewTrainer(model, rates, ms.NewRMinMax(rates), ms.NewSGD(0.1, 0.9, 1e-4), rng)
	data := makeBatches(480)
	for epoch := 0; epoch < 12; epoch++ {
		trainer.Epoch(data)
	}

	// Answer one query progressively under a growing budget.
	query := makeBatches(16)[0]
	full := ms.MeasureCost(model, []int{12}, 1)
	fmt.Println("anytime prediction for one batch of queries:")
	fmt.Println("budget(MACs)  rate  sample0 prediction  confidence")
	for _, r := range rates {
		p := ms.MeasureCost(model, []int{12}, r)
		logits := ms.Predict(model, rates, r, query.X)
		probs := nn.Softmax(logits)
		cls := probs.ArgMaxRow(0)
		fmt.Printf("%8d/%d   %.2f  %17d  %9.1f%%\n",
			p.MACs, full.MACs, r, cls, 100*probs.At(0, cls))
	}

	// Quality of the anytime ladder over a test set.
	test := makeBatches(320)
	fmt.Println("\naccuracy of each anytime level:")
	for _, r := range rates {
		res := ms.Evaluate(model, rates, r, test)
		fmt.Printf("  rate %.2f: %.2f%%\n", r, 100*res.Accuracy)
	}
	fmt.Println("\nthe prediction can be refined in place whenever more budget arrives —")
	fmt.Println("larger subnets reuse the base network's computation structurally (Section 3.5).")
}
