// Live SLO-aware serving (Section 4.1) through the public facade: train a
// sliced MLP, stand up the in-process batching server, push a burst of
// queries through it, and watch the Equation-3 policy pick the slice rate
// per batch from calibrated timings. The same Server type backs the
// cmd/msserver HTTP binary.
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	ms "modelslicing"
	"modelslicing/internal/demo"
)

func main() {
	rng := rand.New(rand.NewSource(1))

	fmt.Println("training a sliced MLP on the synthetic image task...")
	m := demo.TrainMLP(0.25, 4, 30, rng)
	for _, r := range m.Rates {
		fmt.Printf("  rate %.2f -> %.2f%% accuracy\n", r, 100*m.Accuracy[r])
	}

	const slo = 60 * time.Millisecond // batches form every 30 ms
	// Leave 30% of the window for intake and GC: Equation 3 otherwise fills
	// the entire half-window with compute, and any jitter on a loaded
	// machine then lands past the SLO.
	const headroom = 0.7
	srv, err := ms.NewServer(ms.ServerConfig{
		Model:      m.Net,
		Rates:      m.Rates,
		InputShape: m.InputShape,
		SLO:        slo,
		Headroom:   headroom,
		AccuracyAt: m.AccuracyAt,
	})
	if err != nil {
		panic(err)
	}
	defer srv.Stop()

	fmt.Println("\ncalibrated per-sample times (measured, not the r² idealization):")
	times := srv.Calibrator().Snapshot()
	for _, r := range m.Rates {
		fmt.Printf("  rate %.2f -> %v\n", r, time.Duration(times[r]*float64(time.Second)))
	}

	// A quiet period, then a burst: the policy should serve the first
	// queries wide and the burst narrow. The burst is sized from the
	// calibration itself — 2.5× what the full-width model fits in one
	// window — so it overwhelms r = 1 on any machine regardless of how
	// fast the kernels are.
	window := headroom * (slo / 2).Seconds()
	burst := int(2.5 * window / times[1.0])
	fmt.Println("\nserving a quiet batch, then a burst...")
	for _, phase := range []struct {
		name string
		n    int
	}{{"quiet", 8}, {"burst", burst}} {
		n := phase.n
		var chans []<-chan ms.ServerResult
		for i := 0; i < n; i++ {
			ch, err := srv.Submit(m.Sample(rng))
			if err != nil {
				continue // admission control may shed burst overload
			}
			chans = append(chans, ch)
		}
		rates := map[float64]int{}
		var worst time.Duration
		for _, ch := range chans {
			res := <-ch
			rates[res.Rate]++
			if res.Latency > worst {
				worst = res.Latency
			}
		}
		var keys []float64
		for r := range rates {
			keys = append(keys, r)
		}
		sort.Float64s(keys)
		fmt.Printf("  %s (%d queries): worst latency %v, rates", phase.name, n, worst.Round(time.Millisecond))
		for _, r := range keys {
			fmt.Printf("  %.2f×%d", r, rates[r])
		}
		fmt.Println()
	}

	stats := srv.Stats()
	fmt.Printf("\nserver counters: processed %d, rejected %d, SLO misses %d, mean rate %.3f, delivered accuracy %.2f%%\n",
		stats.Processed, stats.Rejected, stats.SLOMisses, stats.MeanRate, 100*stats.WeightedAccuracy)
}
