// Dynamic workload serving (Section 4.1): a single sliced model absorbs a
// 12× diurnal workload under a hard latency SLO by re-resolving Equation 3
// for every T/2 batch, while fixed-width provisioning either violates the
// SLO at the peak (full width) or wastes accuracy off-peak (base width).
//
// The accuracy profile per rate comes from an actually trained sliced MLP,
// not a synthetic curve.
package main

import (
	"fmt"
	"math/rand"

	ms "modelslicing"
	"modelslicing/internal/models"
	"modelslicing/internal/serving"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Train a sliced model and measure each subnet's real accuracy.
	rates := ms.NewRateList(0.25, 4)
	model := models.NewMLP(16, []int{32, 32}, 4, 4, rng)
	makeBatches := func(n int) []ms.Batch {
		var batches []ms.Batch
		for start := 0; start < n; start += 16 {
			x := ms.NewTensor(16, 16)
			labels := make([]int, 16)
			for i := 0; i < 16; i++ {
				c := rng.Intn(4)
				labels[i] = c
				for j := 0; j < 16; j++ {
					v := rng.NormFloat64() * 0.9
					if j%4 == c {
						v += 2
					}
					x.Set(v, i, j)
				}
			}
			batches = append(batches, ms.Batch{X: x, Labels: labels})
		}
		return batches
	}
	trainer := ms.NewTrainer(model, rates, ms.NewRMinMax(rates), ms.NewSGD(0.1, 0.9, 1e-4), rng)
	data := makeBatches(480)
	for epoch := 0; epoch < 12; epoch++ {
		trainer.Epoch(data)
	}
	test := makeBatches(240)
	accuracy := map[float64]float64{}
	fmt.Println("measured subnet accuracy:")
	for _, r := range rates {
		accuracy[r] = ms.Evaluate(model, rates, r, test).Accuracy
		fmt.Printf("  rate %.2f -> %.2f%%\n", r, 100*accuracy[r])
	}

	// Serve a diurnal workload with bursts under a hard latency bound.
	cfg := serving.Config{
		LatencySLO:     100,
		FullSampleTime: 1,
		Rates:          rates,
		AccuracyAt:     func(r float64) float64 { return accuracy[rates.Nearest(r)] },
	}
	arrivals := serving.DiurnalWorkload(480, 40, 12, 0.03, 1.5, rand.New(rand.NewSource(11)))

	elastic := serving.Simulate(cfg, arrivals)
	fullFixed := serving.FixedCapacityBaseline(cfg, 1.0, arrivals)
	baseFixed := serving.FixedCapacityBaseline(cfg, 0.25, arrivals)

	fmt.Printf("\nworkload volatility: %.1fx (peak %d / trough %d per window)\n",
		elastic.Volatility(), elastic.PeakArrivals, elastic.TroughArrivals)
	fmt.Printf("\n%-22s %12s %12s %12s\n", "policy", "SLO misses", "utilization", "accuracy")
	row := func(name string, s serving.Stats) {
		fmt.Printf("%-22s %12d %11.1f%% %11.2f%%\n",
			name, s.SLOViolations, 100*s.Utilization, 100*s.WeightedAccuracy)
	}
	row("model slicing (elastic)", elastic)
	row("fixed full width", fullFixed)
	row("fixed base width", baseFixed)

	fmt.Println("\nper-rate traffic under the elastic policy:")
	for _, r := range rates {
		if n := elastic.RateHist[r]; n > 0 {
			fmt.Printf("  rate %.2f served %5d queries (%.1f%%)\n",
				r, n, 100*float64(n)/float64(elastic.Processed))
		}
	}
}
