// Quickstart: train one MLP with model slicing, then serve it at four cost
// points and deploy an extracted subnet — the 60-second tour of the API.
package main

import (
	"fmt"
	"math/rand"

	ms "modelslicing"
	"modelslicing/internal/models"
)

func main() {
	rng := rand.New(rand.NewSource(1))

	// A toy 3-class task: class c lights up every (j%3==c) feature.
	makeBatches := func(n int) []ms.Batch {
		var batches []ms.Batch
		for start := 0; start < n; start += 16 {
			x := ms.NewTensor(16, 12)
			labels := make([]int, 16)
			for i := 0; i < 16; i++ {
				c := rng.Intn(3)
				labels[i] = c
				for j := 0; j < 12; j++ {
					v := rng.NormFloat64() * 0.7
					if j%3 == c {
						v += 2
					}
					x.Set(v, i, j)
				}
			}
			batches = append(batches, ms.Batch{X: x, Labels: labels})
		}
		return batches
	}

	// 1. Build a slicing-ready model: hidden layers divided into 4 groups.
	rates := ms.NewRateList(0.25, 4) // rates 0.25, 0.5, 0.75, 1.0
	model := models.NewMLP(12, []int{32, 32}, 3, 4, rng)

	// 2. Train with Algorithm 1: the scheduler pins the base and full
	// network and samples one intermediate subnet per step.
	trainer := ms.NewTrainer(model, rates, ms.NewRMinMax(rates), ms.NewSGD(0.1, 0.9, 1e-4), rng)
	trainData := makeBatches(480)
	for epoch := 0; epoch < 12; epoch++ {
		loss := trainer.Epoch(trainData)
		if epoch%4 == 0 {
			fmt.Printf("epoch %2d  mean subnet loss %.4f\n", epoch, loss)
		}
	}

	// 3. One model, four cost points.
	test := makeBatches(160)
	full := ms.MeasureCost(model, []int{12}, 1)
	fmt.Println("\nrate   MACs    params  accuracy")
	for _, r := range rates {
		p := ms.MeasureCost(model, []int{12}, r)
		res := ms.Evaluate(model, rates, r, test)
		fmt.Printf("%.2f  %6d  %6d  %6.2f%%\n", r, p.MACs, p.Params, 100*res.Accuracy)
	}

	// 4. Resolve a runtime budget to a rate (Equation 3) and predict.
	budget := float64(full.MACs) / 4
	r := ms.BudgetRate(rates, budget, float64(full.MACs))
	fmt.Printf("\nbudget %.0f MACs -> slice rate %.2f\n", budget, r)
	logits := ms.Predict(model, rates, r, test[0].X)
	fmt.Printf("first prediction at that rate: class %d\n", logits.ArgMaxRow(0))

	// 5. Deploy: extract a standalone subnet with the small footprint.
	sub := ms.Extract(model, 0.25, rates)
	sp := ms.MeasureCost(sub, []int{12}, 1)
	fmt.Printf("\nextracted r=0.25 subnet: %d params (full model: %d)\n", sp.Params, full.Params)
}
