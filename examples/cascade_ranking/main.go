// Cascade ranking (Section 4.2): a retrieval pipeline whose stages are the
// sub-models sliced from ONE slicing-trained network, compared with the
// conventional cascade of independently trained models. The slicing cascade
// deploys a single model's parameters instead of one per stage, and its
// stages make far more consistent predictions because they share the base
// representation (quantified in the Figure 8 experiment) — the property
// that gives the paper its aggregate-recall win. At this example's mini
// scale the per-stage precision of the sliced subnets has not fully
// converged (see EXPERIMENTS.md, Table 5 note), so the recall comparison
// favours whichever cascade has the stronger stage-1 precision; the cost
// and consistency mechanics are what this program demonstrates.
package main

import (
	"fmt"
	"math/rand"

	ms "modelslicing"
	"modelslicing/internal/cascade"
	"modelslicing/internal/data"
	"modelslicing/internal/models"
	"modelslicing/internal/nn"
	"modelslicing/internal/slicing"
	"modelslicing/internal/train"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	// Item corpus: a small image-classification task; "retrieval" keeps an
	// item only while every cascade stage classifies it consistently.
	cfg := data.CIFARLike(320, 240)
	cfg.H, cfg.W = 12, 12
	cfg.Noise, cfg.SharedWeight = 0.3, 0.25
	d := data.GenerateImages(cfg)
	items := d.TestBatches(64)
	inShape := []int{cfg.Channels, cfg.H, cfg.W}
	rates := ms.NewRateList(0.25, 4)
	// The cascade deploys the three widths from 0.5 up (the paper's cascade
	// also starts above the weakest width); 60 epochs lets the mini-scale
	// slicing training converge (see EXPERIMENTS.md, Table 4 note).
	stageRates := []float64(rates[1:])
	epochs := 60

	fmt.Println("training the slicing model (one network, four stages)...")
	sliced, _ := models.NewVGG(models.VGG13Mini(4, models.NormGroup, len(rates)), rng)
	opt := ms.NewSGD(0.03, 0.9, 1e-4)
	lrs := train.NewStepDecay(0.03, 10, train.MilestonesAt(epochs, 0.6, 0.85)...)
	tr := ms.NewTrainer(sliced, rates, ms.NewRandomWeighted(rates, []float64{0.25, 0.125, 0.125, 0.5}, 3), opt, rng)
	for e := 0; e < epochs; e++ {
		opt.LR = lrs.LR(e)
		tr.Epoch(d.TrainBatches(32, false, rng))
	}

	fmt.Println("training the conventional cascade (one model per stage)...")
	var names []string
	var widths []float64
	var fixed []nn.Layer
	var params, macs []int64
	for _, r := range stageRates {
		num := int(r * 4)
		fcfg := models.VGG13Mini(1, models.NormGroup, 1).ScaleWidths(num, 4)
		m, _ := models.NewVGG(fcfg, rng)
		fopt := ms.NewSGD(0.03, 0.9, 1e-4)
		ftr := ms.NewTrainer(m, slicing.RateList{1}, ms.FixedSchedule(1), fopt, rng)
		for e := 0; e < epochs; e++ {
			fopt.LR = lrs.LR(e)
			ftr.Epoch(d.TrainBatches(32, false, rng))
		}
		p := ms.MeasureCost(m, inShape, 1)
		names = append(names, fmt.Sprintf("fixed-%.2f", r))
		widths = append(widths, r)
		fixed = append(fixed, m)
		params = append(params, p.Params)
		macs = append(macs, p.MACs)
	}

	slicedStages := cascade.FromSlicedModel(sliced, rates, stageRates,
		func(r float64) int64 { return ms.MeasureCost(sliced, inShape, r).Params },
		func(r float64) int64 { return ms.MeasureCost(sliced, inShape, r).MACs })
	slicedRes := cascade.Run(slicedStages, items, true)
	fixedRes := cascade.Run(cascade.FromModels(names, widths, fixed, params, macs), items, false)

	fmt.Printf("\n%-16s %8s %10s %10s %12s %12s\n",
		"solution", "stage", "params", "MACs", "precision", "agg recall")
	report := func(label string, res cascade.Result) {
		for i, st := range res.Stages {
			fmt.Printf("%-16s %8d %10d %10d %11.2f%% %11.2f%%\n",
				label, i+1, st.Params, st.MACs, 100*st.Precision, 100*st.AggRecall)
		}
	}
	report("model-slicing", slicedRes)
	report("cascade-model", fixedRes)
	fmt.Printf("\nfinal recall: slicing %.2f%% vs cascade %.2f%%\n",
		100*slicedRes.FinalRecall(), 100*fixedRes.FinalRecall())
	fmt.Printf("deployed parameters: slicing %d (one model) vs cascade %d (sum of stages)\n",
		slicedRes.TotalParams, fixedRes.TotalParams)
}
