package modelslicing_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one Benchmark per table/figure — see DESIGN.md §4), plus
// kernel-level performance benchmarks that demonstrate the quadratic
// cost-vs-rate law in wall-clock time, and ablation benchmarks for the
// design choices DESIGN.md calls out.
//
// Experiment benchmarks run at the "micro" scale by default so that
// `go test -bench=.` completes in minutes; set MS_BENCH_SCALE=tiny (or
// small/medium) to regenerate tables with full training budgets, and see
// cmd/msbench for the interactive runner. Each benchmark logs the rendered
// table of its (final) run.

import (
	"math/rand"
	"os"
	"testing"

	ms "modelslicing"
	"modelslicing/internal/data"
	"modelslicing/internal/experiments"
	"modelslicing/internal/models"
	"modelslicing/internal/nn"
	"modelslicing/internal/serving"
	"modelslicing/internal/slicing"
	"modelslicing/internal/tensor"
	"modelslicing/internal/train"
)

func benchScale() experiments.Scale {
	if s := os.Getenv("MS_BENCH_SCALE"); s != "" {
		sc, err := experiments.ParseScale(s)
		if err == nil {
			return sc
		}
	}
	return experiments.Micro
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	scale := benchScale()
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = experiments.Run(id, scale, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// --- One benchmark per table and figure of the paper's evaluation. ---

func BenchmarkFig2ResNetTradeoff(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkTable1Scheduling(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkFig3LowerBound(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFig4NNLM(b *testing.B)            { benchExperiment(b, "fig4") }
func BenchmarkTable2NNLM(b *testing.B)          { benchExperiment(b, "table2") }
func BenchmarkTable3Architectures(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig5VGGTradeoff(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkTable4CNNs(b *testing.B)          { benchExperiment(b, "table4") }
func BenchmarkTable4LargeModels(b *testing.B)   { benchExperiment(b, "table4-large") }
func BenchmarkTable5Cascade(b *testing.B)       { benchExperiment(b, "table5") }
func BenchmarkFig6GammaEvolution(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig7LearningCurves(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig8Consistency(b *testing.B)     { benchExperiment(b, "fig8") }

// --- Kernel performance benchmarks. ---

func benchGemm(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, n*n)
	bm := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i], bm[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	b.SetBytes(int64(8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Gemm(n, n, n, a, n, bm, n, c, n)
	}
}

func BenchmarkGemm128(b *testing.B) { benchGemm(b, 128) }
func BenchmarkGemm256(b *testing.B) { benchGemm(b, 256) }
func BenchmarkGemm512(b *testing.B) { benchGemm(b, 512) }

func BenchmarkConvForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	conv := nn.NewConv2D(16, 16, 3, 3, 1, 1, nn.Fixed(), nn.Fixed(), false, rng)
	x := tensor.New(8, 16, 16, 16)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	ctx := nn.Eval(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(ctx, x)
	}
}

func BenchmarkLSTMForward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	l := nn.NewLSTM(64, 64, nn.Fixed(), nn.Fixed(), false, rng)
	x := tensor.New(16, 8, 64)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	ctx := nn.Eval(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(ctx, x)
	}
}

// BenchmarkSlicedInference* demonstrate the paper's headline law in
// wall-clock time: inference cost is roughly quadratic in the slice rate
// (16× speedup at r = 0.25 per Section 6).
func benchSlicedInference(b *testing.B, r float64) {
	rng := rand.New(rand.NewSource(4))
	m, _ := models.NewVGG(models.VGG13Mini(4, models.NormGroup, 1), rng)
	rates := slicing.NewRateList(0.25, 4)
	x := tensor.New(8, 3, 16, 16)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slicing.Predict(m, rates, r, x)
	}
}

func BenchmarkSlicedInferenceFull(b *testing.B)    { benchSlicedInference(b, 1.0) }
func BenchmarkSlicedInferenceHalf(b *testing.B)    { benchSlicedInference(b, 0.5) }
func BenchmarkSlicedInferenceQuarter(b *testing.B) { benchSlicedInference(b, 0.25) }

// BenchmarkSharedInference* measure the zero-copy serving path: one parent
// weight set, slice rates served as prefix views, activations from a reused
// arena. Compare with BenchmarkSlicedInference* (Forward path) and
// BenchmarkExtractedSubnetInference (materialized deployment copy).
func benchSharedInference(b *testing.B, r float64) {
	rng := rand.New(rand.NewSource(4))
	m, _ := models.NewVGG(models.VGG13Mini(4, models.NormGroup, 1), rng)
	rates := slicing.NewRateList(0.25, 4)
	shared := slicing.NewShared(m, rates)
	arena := tensor.NewArena()
	x := tensor.New(8, 3, 16, 16)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	// Warm up: the first pass grows the arena to its high-water mark.
	shared.Infer(r, x, arena)
	arena.Reset()
	shared.Infer(r, x, arena)
	arena.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shared.Infer(r, x, arena)
		arena.Reset()
	}
}

func BenchmarkSharedInferenceFull(b *testing.B)    { benchSharedInference(b, 1.0) }
func BenchmarkSharedInferenceHalf(b *testing.B)    { benchSharedInference(b, 0.5) }
func BenchmarkSharedInferenceQuarter(b *testing.B) { benchSharedInference(b, 0.25) }

// BenchmarkDenseMLPInferArena pins the allocs/op ≈ 0 property of the
// arena-backed inference path on a Dense MLP.
func BenchmarkDenseMLPInferArena(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	model := models.NewMLP(16, []int{64, 64}, 4, 4, rng)
	rates := slicing.NewRateList(0.25, 4)
	shared := slicing.NewShared(model, rates)
	arena := tensor.NewArena()
	x := tensor.New(32, 16)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	shared.Infer(0.5, x, arena)
	arena.Reset()
	shared.Infer(0.5, x, arena)
	arena.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shared.Infer(0.5, x, arena)
		arena.Reset()
	}
}

// BenchmarkExtractedSubnetInference measures the standalone deployed subnet
// (Extract) against the sliced parent at the same rate.
func BenchmarkExtractedSubnetInference(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m, _ := models.NewVGG(models.VGG13Mini(4, models.NormGroup, 1), rng)
	rates := slicing.NewRateList(0.25, 4)
	sub := slicing.Extract(m, 0.25, rates)
	x := tensor.New(8, 3, 16, 16)
	ctx := nn.Eval(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub.Forward(ctx, x)
	}
}

// --- Ablation benchmarks for DESIGN.md §5 design choices. ---

// ablationTrain trains a sliced MLP on a separable task and logs subnet
// accuracies; the bench time is the cost of the configuration.
func ablationTrain(b *testing.B, groups int, sched func(slicing.RateList) slicing.Scheduler, rescale bool) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(9))
		rates := slicing.NewRateList(0.25, 4)
		model := models.NewMLP(16, []int{32, 32}, 4, groups, rng)
		for _, l := range model.Layers {
			if d, ok := l.(*nn.Dense); ok {
				d.Rescale = rescale
			}
		}
		tr := slicing.NewTrainer(model, rates, sched(rates), train.NewSGD(0.1, 0.9, 1e-4), rng)
		batches := ablationData(rng)
		for epoch := 0; epoch < 8; epoch++ {
			tr.Epoch(batches)
		}
		if i == b.N-1 {
			test := ablationData(rng)
			for j, r := range rates {
				b.Logf("groups=%d rate=%.2f acc=%.3f", groups, r,
					train.Evaluate(model, r, j, test).Accuracy)
			}
		}
	}
}

func ablationData(rng *rand.Rand) []train.Batch {
	var batches []train.Batch
	for k := 0; k < 12; k++ {
		x := tensor.New(16, 16)
		labels := make([]int, 16)
		for i := 0; i < 16; i++ {
			c := rng.Intn(4)
			labels[i] = c
			for j := 0; j < 16; j++ {
				v := rng.NormFloat64() * 0.5
				if j%4 == c {
					v += 2
				}
				x.Set(v, i, j)
			}
		}
		batches = append(batches, train.Batch{X: x, Labels: labels})
	}
	return batches
}

func BenchmarkAblationGroups2(b *testing.B) {
	ablationTrain(b, 2, func(r slicing.RateList) slicing.Scheduler { return slicing.NewRMinMax(r) }, true)
}

func BenchmarkAblationGroups4(b *testing.B) {
	ablationTrain(b, 4, func(r slicing.RateList) slicing.Scheduler { return slicing.NewRMinMax(r) }, true)
}

func BenchmarkAblationGroups8(b *testing.B) {
	ablationTrain(b, 8, func(r slicing.RateList) slicing.Scheduler { return slicing.NewRMinMax(r) }, true)
}

// Rescale ablation: output rescaling stabilizes subnet logit scale in
// stacks without normalization (DESIGN.md §5 item 5).
func BenchmarkAblationRescaleOn(b *testing.B) {
	ablationTrain(b, 4, func(r slicing.RateList) slicing.Scheduler { return slicing.NewRMinMax(r) }, true)
}

func BenchmarkAblationRescaleOff(b *testing.B) {
	ablationTrain(b, 4, func(r slicing.RateList) slicing.Scheduler { return slicing.NewRMinMax(r) }, false)
}

func BenchmarkAblationSchedulerStatic(b *testing.B) {
	ablationTrain(b, 4, func(r slicing.RateList) slicing.Scheduler { return slicing.Static{Rates: r} }, true)
}

func BenchmarkAblationSchedulerWeighted(b *testing.B) {
	ablationTrain(b, 4, func(r slicing.RateList) slicing.Scheduler {
		return slicing.NewRandomWeighted(r, []float64{0.25, 0.125, 0.125, 0.5}, 2)
	}, true)
}

// BenchmarkAblationServingElastic compares the Section 4.1 elastic policy
// with fixed-capacity provisioning under a 16× diurnal workload.
func BenchmarkAblationServingElastic(b *testing.B) {
	benchServingPolicy(b, -1)
}

func BenchmarkAblationServingFixedFull(b *testing.B) {
	benchServingPolicy(b, 1.0)
}

func BenchmarkAblationServingFixedBase(b *testing.B) {
	benchServingPolicy(b, 0.25)
}

func benchServingPolicy(b *testing.B, fixedRate float64) {
	cfg := serving.Config{
		LatencySLO:     100,
		FullSampleTime: 1,
		Rates:          slicing.NewRateList(0.25, 4),
		AccuracyAt:     func(r float64) float64 { return 0.88 + 0.06*r },
	}
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(11 + int64(i)))
		arrivals := serving.DiurnalWorkload(500, 40, 16, 0.02, 1.5, rng)
		var stats serving.Stats
		if fixedRate < 0 {
			stats = serving.Simulate(cfg, arrivals)
		} else {
			stats = serving.FixedCapacityBaseline(cfg, fixedRate, arrivals)
		}
		if i == b.N-1 {
			b.Logf("violations=%d utilization=%.3f meanRate=%.3f acc=%.4f",
				stats.SLOViolations, stats.Utilization, stats.MeanRate, stats.WeightedAccuracy)
		}
	}
}

// BenchmarkDataGeneration covers the synthetic substrate generators.
func BenchmarkDataGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data.GenerateImages(data.CIFARLike(200, 100))
		data.GenerateText(data.PTBLike(5000, 1000))
	}
}

var _ = ms.NewRateList // keep the facade linked into the bench binary
