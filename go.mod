module modelslicing

go 1.24
